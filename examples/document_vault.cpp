// Document vault: dealer-less threshold IBE protecting arbitrary-size
// documents.
//
// Three trustees run the Feldman-VSS DKG — no dealer ever holds the
// master key. Documents of any size are sealed to vault identities with
// the hybrid layer (FullIdent-wrapped session key + streamed body).
// Opening a document needs any 2 of the 3 trustees to contribute
// pairing shares for the key block; the body never touches the
// trustees.
//
// Build & run:  cmake --build build && ./build/examples/document_vault
#include <iostream>
#include <vector>

#include "common/error.h"
#include "hash/drbg.h"
#include "ibe/hybrid.h"
#include "pairing/params.h"
#include "threshold/dkg.h"

int main() {
  using namespace medcrypt;
  hash::HmacDrbg rng(1717);

  constexpr std::size_t kT = 2, kN = 3;
  std::cout << "== document vault: " << kT << "-of-" << kN
            << " trustees, no dealer ==\n";

  // ---------------------------------------------------------------------
  // DKG: the trustees jointly generate the master key.
  // ---------------------------------------------------------------------
  std::vector<threshold::DkgParticipant> trustees;
  for (std::uint32_t i = 1; i <= kN; ++i) {
    trustees.emplace_back(pairing::paper_params(), kT, kN, i, rng);
  }
  for (auto& receiver : trustees) {
    for (auto& sender : trustees) {
      if (sender.index() != receiver.index()) {
        receiver.receive_commitment(sender.commitment());
      }
    }
  }
  for (auto& receiver : trustees) {
    for (auto& sender : trustees) {
      if (sender.index() == receiver.index()) continue;
      if (!receiver.receive_share(sender.index(),
                                  sender.share_for(receiver.index()))) {
        std::cout << "trustee " << receiver.index() << " complains about "
                  << sender.index() << "!\n";
        return 1;
      }
    }
  }
  std::vector<threshold::DkgParticipant::Result> results;
  for (auto& t : trustees) results.push_back(t.finalize());
  std::cout << "DKG complete; " << results[0].qualified.size()
            << " trustees qualified; nobody ever saw the master key\n";

  const threshold::ThresholdSetup setup = threshold::ibe_setup_from_dkg(
      pairing::paper_params(), ibe::kSessionKeyLen, kT, kN, results[0]);

  // ---------------------------------------------------------------------
  // Seal a large document to a vault identity.
  // ---------------------------------------------------------------------
  Bytes document(100'000);
  rng.fill(document);  // stand-in for a 100 KB file
  const std::string vault_id = "vault:contracts/2026/acme-merger";
  const ibe::HybridCiphertext sealed =
      ibe::seal(setup.params, vault_id, document, rng);
  std::cout << "sealed " << document.size() << "-byte document to \""
            << vault_id << "\" (" << sealed.to_bytes().size()
            << " bytes on disk, constant overhead)\n";

  // ---------------------------------------------------------------------
  // Open: trustees 1 and 3 contribute key-block shares.
  // ---------------------------------------------------------------------
  std::vector<threshold::DecryptionShare> shares;
  for (std::uint32_t j : {1u, 3u}) {
    const threshold::KeyShare ks = threshold::ibe_key_share_from_dkg(
        setup, j, results[j - 1].secret_share, vault_id);
    if (!verify_key_share(setup, vault_id, ks)) {
      std::cout << "trustee " << j << " produced a bad key share!\n";
      return 1;
    }
    shares.push_back(compute_decryption_share(setup, ks, sealed.key_block.u,
                                              /*prove=*/true, rng));
  }
  const auto valid =
      select_valid_shares(setup, vault_id, sealed.key_block.u, shares);
  const Bytes session_key =
      threshold_full_decrypt(setup, valid, sealed.key_block);
  const Bytes recovered = ibe::open_with_session_key(session_key, sealed);

  std::cout << "opened with trustees {1, 3}: "
            << (recovered == document ? "document intact" : "CORRUPTED")
            << "\n";

  // One trustee alone gets nothing.
  std::vector<threshold::DecryptionShare> lone(shares.begin(),
                                               shares.begin() + 1);
  try {
    (void)threshold::combine_decryption_shares(setup, lone);
    std::cout << "ERROR: single trustee decrypted!\n";
    return 1;
  } catch (const InvalidArgument&) {
    std::cout << "single trustee alone: rejected (threshold enforced)\n";
  }
  return recovered == document ? 0 : 1;
}
