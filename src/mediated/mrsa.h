// mRSA — the original mediated RSA of Boneh–Ding–Tsudik–Wong [4]
// (paper §1–§2): per-user moduli, ordinary (certified) public keys.
//
//   Keygen: a CA generates for each user an individual RSA key
//     (n_u, e, d); d is split additively, d = d_user + d_sem mod φ(n_u).
//   Encrypt/Verify: plain RSA-OAEP / RSA-FDH under (n_u, e) — the SEM is
//     transparent to senders and verifiers.
//   Decrypt/Sign: the half-exponentiation protocol, as in IB-mRSA.
//
// The trust-model contrast the paper draws (§2): with per-user moduli a
// user colluding with the SEM recovers only their OWN d — they learn
// nothing about other users, so the SEM need only be SEMI-trusted. The
// common modulus of IB-mRSA is what upgrades the SEM to fully-trusted.
// Tests demonstrate both sides of this asymmetry.
#pragma once

#include "mediated/sem_server.h"
#include "rsa/oaep.h"
#include "rsa/rsa.h"
#include "sim/transport.h"

namespace medcrypt::mediated {

/// CA-side result of one user's mRSA keygen. Both exponent halves are
/// wiped on destruction.
struct MRsaKeygenResult {
  MRsaKeygenResult() = default;
  MRsaKeygenResult(rsa::PublicKey pub_, bigint::BigInt d_user_,
                   bigint::BigInt d_sem_)
      : pub(std::move(pub_)), d_user(std::move(d_user_)),
        d_sem(std::move(d_sem_)) {}
  MRsaKeygenResult(const MRsaKeygenResult&) = default;
  MRsaKeygenResult(MRsaKeygenResult&&) = default;
  MRsaKeygenResult& operator=(const MRsaKeygenResult&) = default;
  MRsaKeygenResult& operator=(MRsaKeygenResult&&) = default;
  ~MRsaKeygenResult() {
    d_user.wipe();
    d_sem.wipe();
  }

  rsa::PublicKey pub;   // certified and published
  bigint::BigInt d_user;
  bigint::BigInt d_sem;
  // The CA discards d, p, q, φ after the split (unlike the IB-mRSA PKG,
  // which must keep φ(n) to serve future identities).
};

/// Generates a fresh per-user key and splits the exponent.
MRsaKeygenResult mrsa_keygen(std::size_t modulus_bits, RandomSource& rng);

/// Sender-side encryption (plain RSA-OAEP; SEM-transparent).
Bytes mrsa_encrypt(const rsa::PublicKey& pub, BytesView message,
                   RandomSource& rng);

/// FDH hash for signatures, domain-separated from IB-mRSA's.
bigint::BigInt mrsa_fdh(const rsa::PublicKey& pub, BytesView message);

/// Verifier-side check (plain RSA; SEM-transparent).
bool mrsa_verify(const rsa::PublicKey& pub, BytesView message,
                 const bigint::BigInt& signature);

/// The SEM's per-user record: the modulus and its exponent half.
/// SEM-side record for one per-user-modulus mRSA identity. The exponent
/// half is wiped on destruction (and by MediatorBase teardown).
struct MRsaSemRecord {
  MRsaSemRecord() = default;
  MRsaSemRecord(bigint::BigInt modulus_, bigint::BigInt d_sem_)
      : modulus(std::move(modulus_)), d_sem(std::move(d_sem_)) {}
  MRsaSemRecord(const MRsaSemRecord&) = default;
  MRsaSemRecord(MRsaSemRecord&&) = default;
  MRsaSemRecord& operator=(const MRsaSemRecord&) = default;
  MRsaSemRecord& operator=(MRsaSemRecord&&) = default;
  ~MRsaSemRecord() { wipe(); }

  void wipe() { d_sem.wipe(); }

  bigint::BigInt modulus;
  bigint::BigInt d_sem;
};

/// SEM-side endpoint for per-user mRSA.
class PerUserRsaMediator : public MediatorBase<MRsaSemRecord> {
 public:
  explicit PerUserRsaMediator(std::shared_ptr<RevocationList> revocations)
      : MediatorBase<MRsaSemRecord>(std::move(revocations)) {}

  /// Issues the half-result c^{d_sem} mod n_user.
  bigint::BigInt issue_token(std::string_view identity,
                             const bigint::BigInt& c) const;
};

/// User-side endpoint holding (n, e, d_user).
class MRsaUser {
 public:
  MRsaUser(rsa::PublicKey pub, std::string identity, bigint::BigInt user_key);

  /// d_user is the exponent half the §2 collusion analysis protects;
  /// scrub it when the holder dies.
  ~MRsaUser() { user_key_.wipe(); }
  MRsaUser(const MRsaUser&) = default;
  MRsaUser(MRsaUser&&) = default;
  MRsaUser& operator=(const MRsaUser&) = default;
  MRsaUser& operator=(MRsaUser&&) = default;

  const std::string& identity() const { return identity_; }
  const rsa::PublicKey& public_key() const { return pub_; }

  /// Mediated OAEP decryption.
  Bytes decrypt(const Bytes& ciphertext, const PerUserRsaMediator& sem,
                sim::Transport* transport = nullptr) const;

  /// Mediated FDH signing; the user verifies before releasing.
  bigint::BigInt sign(BytesView message, const PerUserRsaMediator& sem,
                      sim::Transport* transport = nullptr) const;

  /// The user's exponent half (exposed for the §2 collusion analysis in
  /// tests).
  const bigint::BigInt& user_key() const { return user_key_; }

 private:
  rsa::PublicKey pub_;
  std::string identity_;
  bigint::BigInt user_key_;
};

/// CA-side enrollment: keygen + install the SEM record.
MRsaUser enroll_per_user_mrsa(std::size_t modulus_bits,
                              PerUserRsaMediator& sem, std::string identity,
                              RandomSource& rng);

}  // namespace medcrypt::mediated
