#include "bigint/bigint.h"

#include <algorithm>
#include <ostream>

#include "bigint/montgomery.h"
#include "common/error.h"

namespace medcrypt::bigint {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// ---------------------------------------------------------------------------
// construction / conversion
// ---------------------------------------------------------------------------

BigInt::BigInt(std::int64_t v) {
  if (v < 0) {
    negative_ = true;
    // Avoid overflow on INT64_MIN.
    limbs_.push_back(static_cast<u64>(-(v + 1)) + 1);
  } else if (v > 0) {
    limbs_.push_back(static_cast<u64>(v));
  }
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt BigInt::from_limbs(std::vector<u64> limbs, bool negative) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.trim();
  out.negative_ = negative && !out.limbs_.empty();
  return out;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_hex(std::string_view hex) {
  bool neg = false;
  if (!hex.empty() && hex.front() == '-') {
    neg = true;
    hex.remove_prefix(1);
  }
  if (hex.empty()) throw InvalidArgument("BigInt::from_hex: empty string");
  BigInt out;
  for (char c : hex) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else throw InvalidArgument("BigInt::from_hex: invalid digit");
    out = (out << 4) + BigInt(static_cast<std::uint64_t>(d));
  }
  out.negative_ = neg && !out.limbs_.empty();
  return out;
}

BigInt BigInt::from_dec(std::string_view dec) {
  bool neg = false;
  if (!dec.empty() && dec.front() == '-') {
    neg = true;
    dec.remove_prefix(1);
  }
  if (dec.empty()) throw InvalidArgument("BigInt::from_dec: empty string");
  BigInt out;
  const BigInt ten(std::uint64_t{10});
  for (char c : dec) {
    if (c < '0' || c > '9') throw InvalidArgument("BigInt::from_dec: invalid digit");
    out = out * ten + BigInt(static_cast<std::uint64_t>(c - '0'));
  }
  out.negative_ = neg && !out.limbs_.empty();
  return out;
}

BigInt BigInt::from_bytes_be(BytesView bytes) {
  BigInt out;
  const std::size_t n = bytes.size();
  out.limbs_.resize((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // byte i (from the end) goes into limb i/8, position i%8
    const std::size_t from_end = n - 1 - i;
    out.limbs_[i / 8] |= static_cast<u64>(bytes[from_end]) << (8 * (i % 8));
  }
  out.trim();
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  out.erase(0, first);
  if (negative_) out.insert(out.begin(), '-');
  return out;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  // Split the magnitude into base-10^19 chunks, most significant last.
  BigInt v = abs();
  const BigInt chunk(std::uint64_t{10'000'000'000'000'000'000ULL});  // 10^19
  std::vector<u64> parts;
  while (!v.is_zero()) {
    BigInt q, r;
    divmod(v, chunk, q, r);
    parts.push_back(r.low_u64());
    v = std::move(q);
  }
  std::string out = negative_ ? "-" : "";
  out += std::to_string(parts.back());
  for (std::size_t i = parts.size() - 1; i-- > 0;) {
    std::string piece = std::to_string(parts[i]);
    out += std::string(19 - piece.size(), '0');
    out += piece;
  }
  return out;
}

Bytes BigInt::to_bytes_be() const {
  if (negative_) throw InvalidArgument("BigInt::to_bytes_be: negative value");
  if (is_zero()) return {};
  const std::size_t nbytes = (bit_length() + 7) / 8;
  return to_bytes_be_padded(nbytes);
}

Bytes BigInt::to_bytes_be_padded(std::size_t len) const {
  if (negative_) throw InvalidArgument("BigInt::to_bytes_be_padded: negative value");
  if (bit_length() > len * 8) {
    throw InvalidArgument("BigInt::to_bytes_be_padded: value too large");
  }
  Bytes out(len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t limb = i / 8;
    if (limb >= limbs_.size()) break;
    out[len - 1 - i] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (i % 8)));
  }
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 + (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

std::uint64_t BigInt::to_u64() const {
  if (negative_ || limbs_.size() > 1) {
    throw InvalidArgument("BigInt::to_u64: out of range");
  }
  return low_u64();
}

// ---------------------------------------------------------------------------
// magnitude helpers
// ---------------------------------------------------------------------------

int BigInt::cmp_mag(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::vector<u64> BigInt::add_mag(const std::vector<u64>& a, const std::vector<u64>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<u64> out(big.size() + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    u128 sum = static_cast<u128>(big[i]) + (i < small.size() ? small[i] : 0) + carry;
    out[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out[big.size()] = carry;
  return out;
}

std::vector<u64> BigInt::sub_mag(const std::vector<u64>& a, const std::vector<u64>& b) {
  std::vector<u64> out(a.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const u64 bi = i < b.size() ? b[i] : 0;
    const u128 diff = static_cast<u128>(a[i]) - bi - borrow;
    out[i] = static_cast<u64>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
  return out;
}

std::vector<u64> BigInt::mul_mag(const std::vector<u64>& a, const std::vector<u64>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<u64> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 carry = 0;
    const u64 ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      u128 cur = static_cast<u128>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + b.size()] += carry;
  }
  return out;
}

// Knuth Algorithm D (vol 2, 4.3.1) on 64-bit limbs.
void BigInt::divmod_mag(const std::vector<u64>& a, const std::vector<u64>& b,
                        std::vector<u64>& q, std::vector<u64>& r) {
  if (b.empty()) throw InvalidArgument("BigInt: division by zero");

  // Trivial cases.
  BigInt am = from_limbs(a, false), bm = from_limbs(b, false);
  if (cmp_mag(am, bm) < 0) {
    q.clear();
    r = a;
    return;
  }
  if (b.size() == 1) {
    const u64 d = b[0];
    q.assign(a.size(), 0);
    u128 rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      u128 cur = (rem << 64) | a[i];
      q[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    r.assign(1, static_cast<u64>(rem));
    return;
  }

  // Normalize: shift so the top limb of b has its high bit set.
  const int shift = __builtin_clzll(b.back());
  const std::size_t n = b.size();
  const std::size_t m = a.size() - n;

  std::vector<u64> u(a.size() + 1, 0), v(n, 0);
  if (shift == 0) {
    std::copy(a.begin(), a.end(), u.begin());
    v = b;
  } else {
    for (std::size_t i = a.size(); i-- > 0;) {
      u[i + 1] |= a[i] >> (64 - shift);
      u[i] = a[i] << shift;
    }
    // (note: u[a.size()] gets high bits of a.back())
    for (std::size_t i = n; i-- > 0;) {
      v[i] = b[i] << shift;
      if (i > 0) v[i] |= b[i - 1] >> (64 - shift);
    }
  }

  q.assign(m + 1, 0);
  const u64 vtop = v[n - 1];
  const u64 vsecond = v[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / vtop, clamped below B so the
    // correction test below cannot overflow 128 bits.
    const u128 numerator = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 q_hat = numerator / vtop;
    u128 r_hat = numerator % vtop;
    if (q_hat >> 64) {
      q_hat = ~u64{0};
      r_hat = numerator - q_hat * vtop;
    }
    while (r_hat <= ~u64{0} &&
           q_hat * vsecond > ((r_hat << 64) | u[j + n - 2])) {
      --q_hat;
      r_hat += vtop;
    }

    // Multiply-subtract: u[j..j+n] -= q_hat * v.
    u128 borrow = 0, carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 prod = q_hat * v[i] + carry;
      carry = prod >> 64;
      const u64 plo = static_cast<u64>(prod);
      u128 sub = static_cast<u128>(u[j + i]) - plo - borrow;
      u[j + i] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    u128 sub = static_cast<u128>(u[j + n]) - carry - borrow;
    u[j + n] = static_cast<u64>(sub);

    if (sub >> 64) {
      // q_hat was one too large: add back.
      --q_hat;
      u128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u[j + i]) + v[i] + c;
        u[j + i] = static_cast<u64>(sum);
        c = sum >> 64;
      }
      u[j + n] += static_cast<u64>(c);
    }
    q[j] = static_cast<u64>(q_hat);
  }

  // Denormalize remainder.
  r.assign(n, 0);
  if (shift == 0) {
    std::copy(u.begin(), u.begin() + n, r.begin());
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = u[i] >> shift;
      if (i + 1 < n + 1) r[i] |= u[i + 1] << (64 - shift);
    }
  }
}

// ---------------------------------------------------------------------------
// signed arithmetic
// ---------------------------------------------------------------------------

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.negative_ == b.negative_) {
    return BigInt::from_limbs(BigInt::add_mag(a.limbs_, b.limbs_), a.negative_);
  }
  const int c = BigInt::cmp_mag(a, b);
  if (c == 0) return BigInt{};
  if (c > 0) {
    return BigInt::from_limbs(BigInt::sub_mag(a.limbs_, b.limbs_), a.negative_);
  }
  return BigInt::from_limbs(BigInt::sub_mag(b.limbs_, a.limbs_), b.negative_);
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  return BigInt::from_limbs(BigInt::mul_mag(a.limbs_, b.limbs_),
                            a.negative_ != b.negative_);
}

void BigInt::divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r) {
  std::vector<u64> qm, rm;
  divmod_mag(a.limbs_, b.limbs_, qm, rm);
  q = from_limbs(std::move(qm), a.negative_ != b.negative_);
  r = from_limbs(std::move(rm), a.negative_);
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return q;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  return r;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    if (bits == 0) return *this;
    return *this;
  }
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  return from_limbs(std::move(out), negative_);
}

BigInt BigInt::operator>>(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return BigInt{};
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  return from_limbs(std::move(out), negative_);
}

std::strong_ordering BigInt::operator<=>(const BigInt& b) const {
  if (negative_ != b.negative_) {
    return negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const int c = cmp_mag(*this, b);
  const int signed_c = negative_ ? -c : c;
  if (signed_c < 0) return std::strong_ordering::less;
  if (signed_c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

// ---------------------------------------------------------------------------
// number theory
// ---------------------------------------------------------------------------

BigInt BigInt::mod(const BigInt& m) const {
  if (m <= BigInt{}) throw InvalidArgument("BigInt::mod: modulus must be positive");
  BigInt r = *this % m;
  if (r.is_negative()) r += m;
  return r;
}

BigInt BigInt::add_mod(const BigInt& b, const BigInt& m) const {
  BigInt s = *this + b;
  if (s >= m) s -= m;
  return s;
}

BigInt BigInt::sub_mod(const BigInt& b, const BigInt& m) const {
  BigInt s = *this - b;
  if (s.is_negative()) s += m;
  return s;
}

BigInt BigInt::mul_mod(const BigInt& b, const BigInt& m) const {
  return (*this * b).mod(m);
}

BigInt BigInt::pow_mod(const BigInt& e, const BigInt& m) const {
  if (e.is_negative()) throw InvalidArgument("BigInt::pow_mod: negative exponent");
  if (m <= BigInt{}) throw InvalidArgument("BigInt::pow_mod: modulus must be positive");
  if (m == BigInt(std::uint64_t{1})) return BigInt{};
  if (m.is_odd()) {
    const Montgomery mont(m);
    return mont.pow(this->mod(m), e);
  }
  // Even modulus: plain square-and-multiply (rare path; used by tests only).
  BigInt base = this->mod(m);
  BigInt result(std::uint64_t{1});
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    result = result.mul_mod(result, m);
    if (e.bit(i)) result = result.mul_mod(base, m);
  }
  return result;
}

BigInt BigInt::gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.abs(), y = b.abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt BigInt::extended_gcd(const BigInt& a, const BigInt& b, BigInt& x, BigInt& y) {
  BigInt old_r = a, r = b;
  BigInt old_s(std::int64_t{1}), s{};
  BigInt old_t{}, t(std::int64_t{1});
  while (!r.is_zero()) {
    BigInt q = old_r / r;
    BigInt tmp = old_r - q * r;
    old_r = std::move(r);
    r = std::move(tmp);
    tmp = old_s - q * s;
    old_s = std::move(s);
    s = std::move(tmp);
    tmp = old_t - q * t;
    old_t = std::move(t);
    t = std::move(tmp);
  }
  if (old_r.is_negative()) {
    old_r = -old_r;
    old_s = -old_s;
    old_t = -old_t;
  }
  x = std::move(old_s);
  y = std::move(old_t);
  return old_r;
}

BigInt BigInt::mod_inverse(const BigInt& m) const {
  BigInt x, y;
  const BigInt g = extended_gcd(this->mod(m), m, x, y);
  if (g != BigInt(std::uint64_t{1})) {
    throw InvalidArgument("BigInt::mod_inverse: not invertible");
  }
  return x.mod(m);
}

// ---------------------------------------------------------------------------
// secret hygiene
// ---------------------------------------------------------------------------

void BigInt::wipe() {
  if (!limbs_.empty()) {
    // Volatile stores so the scrub survives dead-store elimination even
    // though the vector is cleared immediately after.
    volatile std::uint64_t* p = limbs_.data();
    for (std::size_t i = 0; i < limbs_.size(); ++i) p[i] = 0;
  }
  limbs_.clear();
  negative_ = false;
}

// ---------------------------------------------------------------------------
// randomness
// ---------------------------------------------------------------------------

BigInt BigInt::random_bits(RandomSource& rng, std::size_t bits) {
  if (bits == 0) return BigInt{};
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes buf(nbytes);
  rng.fill(buf);
  const std::size_t excess = nbytes * 8 - bits;
  buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
  return from_bytes_be(buf);
}

BigInt BigInt::random_below(RandomSource& rng, const BigInt& bound) {
  if (bound <= BigInt{}) throw InvalidArgument("BigInt::random_below: bound must be positive");
  const std::size_t bits = bound.bit_length();
  // Rejection sampling: the trip count depends only on candidates that
  // are *discarded*, never on the returned value.
  // medlint: allow(ct-variable-time)
  for (;;) {
    BigInt candidate = random_bits(rng, bits);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_unit(RandomSource& rng, const BigInt& bound) {
  if (bound <= BigInt(std::uint64_t{1})) {
    throw InvalidArgument("BigInt::random_unit: bound must exceed 1");
  }
  // Rejection sampling over discarded candidates (see random_below).
  // medlint: allow(ct-variable-time)
  for (;;) {
    BigInt candidate = random_below(rng, bound);
    if (!candidate.is_zero()) return candidate;
  }
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.to_dec();
}

}  // namespace medcrypt::bigint
