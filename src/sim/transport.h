// Simulated client/server transport with byte accounting and a latency
// model.
//
// The SEM protocols (mediated IBE / GDH / mRSA) are one-round:
//   client ──request──▶ mediator
//   client ◀──token──── mediator
// Transport records each message's size, and — when bound to a SimClock —
// charges propagation plus serialization latency so end-to-end mediated
// latency can be studied under different network assumptions.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "sim/clock.h"
#include "sim/stats.h"

namespace medcrypt::sim {

/// One-way delay parameters.
struct LatencyModel {
  /// One-way propagation delay, ns (RTT/2).
  std::uint64_t propagation_ns = 0;
  /// Serialization cost per byte, ns.
  double ns_per_byte = 0.0;

  std::uint64_t delay_for(std::uint64_t bytes) const {
    return propagation_ns +
           static_cast<std::uint64_t>(ns_per_byte * static_cast<double>(bytes));
  }

  /// A LAN-ish default: 100 µs one-way, 1 Gbit/s.
  static LatencyModel lan() { return {100'000, 8.0 / 1.0}; }

  /// A WAN-ish default: 20 ms one-way, 100 Mbit/s.
  static LatencyModel wan() { return {20'000'000, 80.0 / 1.0}; }
};

/// A bidirectional link between a client (user) and a server (SEM/PKG).
class Transport {
 public:
  /// Pure-accounting transport (no clock).
  Transport() = default;

  /// Accounting + virtual-time transport.
  Transport(SimClock* clock, LatencyModel latency)
      : clock_(clock), latency_(latency) {}

  /// Records a client -> server message of `bytes` bytes.
  void send_to_server(std::uint64_t bytes);

  /// Records a server -> client message of `bytes` bytes.
  void send_to_client(std::uint64_t bytes);

  const LinkStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

 private:
  SimClock* clock_ = nullptr;
  LatencyModel latency_{};
  LinkStats stats_;
};

}  // namespace medcrypt::sim
