// Tests for RSA keygen, raw ops, OAEP padding, and the mRSA exponent
// split. Reduced modulus sizes keep safe-prime generation fast.
#include <gtest/gtest.h>

#include "bigint/prime.h"
#include "common/error.h"
#include "hash/drbg.h"
#include "rsa/oaep.h"
#include "rsa/rsa.h"

namespace medcrypt::rsa {
namespace {

using hash::HmacDrbg;

PrivateKey test_key(std::uint64_t seed, std::size_t bits = 768) {
  HmacDrbg rng(seed);
  KeyGenOptions opts;
  opts.modulus_bits = bits;
  return generate_key(opts, rng);
}

TEST(Rsa, KeyGenInvariants) {
  const PrivateKey key = test_key(70);
  EXPECT_EQ(key.pub.n.bit_length(), 768u);
  EXPECT_EQ(key.p * key.q, key.pub.n);
  EXPECT_EQ((key.p - BigInt(1)) * (key.q - BigInt(1)), key.phi);
  EXPECT_EQ(key.pub.e.mul_mod(key.d, key.phi), BigInt(1));
}

TEST(Rsa, RawRoundTrip) {
  const PrivateKey key = test_key(71);
  HmacDrbg rng(72);
  for (int i = 0; i < 5; ++i) {
    const BigInt m = BigInt::random_below(rng, key.pub.n);
    EXPECT_EQ(private_op(key, public_op(key.pub, m)), m);
    EXPECT_EQ(public_op(key.pub, private_op(key, m)), m);  // sign direction
  }
}

TEST(Rsa, RejectsOutOfRange) {
  const PrivateKey key = test_key(73);
  EXPECT_THROW(public_op(key.pub, key.pub.n), InvalidArgument);
  EXPECT_THROW(public_op(key.pub, BigInt(-1)), InvalidArgument);
  EXPECT_THROW(private_op(key, key.pub.n + BigInt(5)), InvalidArgument);
}

TEST(Rsa, SafePrimeKeyGen) {
  HmacDrbg rng(74);
  KeyGenOptions opts;
  opts.modulus_bits = 256;  // tiny, but safe primes are slow
  opts.safe_primes = true;
  opts.public_exponent = BigInt(3);
  const PrivateKey key = generate_key(opts, rng);
  // p = 2p' + 1 with p' prime
  const BigInt p_half = (key.p - BigInt(1)) / BigInt(2);
  const BigInt q_half = (key.q - BigInt(1)) / BigInt(2);
  EXPECT_TRUE(bigint::is_probable_prime(p_half, rng));
  EXPECT_TRUE(bigint::is_probable_prime(q_half, rng));
}

TEST(Rsa, SplitExponentRecombines) {
  const PrivateKey key = test_key(75);
  HmacDrbg rng(76);
  const auto [d_user, d_sem] = split_exponent(key.d, key.phi, rng);
  EXPECT_EQ(d_user.add_mod(d_sem, key.phi), key.d.mod(key.phi));

  // The two-exponent decryption of mRSA: c^d = c^d_user * c^d_sem.
  const BigInt m = BigInt::random_below(rng, key.pub.n);
  const BigInt c = public_op(key.pub, m);
  const BigInt m_user = c.pow_mod(d_user, key.pub.n);
  const BigInt m_sem = c.pow_mod(d_sem, key.pub.n);
  EXPECT_EQ(m_user.mul_mod(m_sem, key.pub.n), m);
}

TEST(Rsa, SplitsAreRandomized) {
  const PrivateKey key = test_key(77);
  HmacDrbg rng(78);
  const auto [u1, s1] = split_exponent(key.d, key.phi, rng);
  const auto [u2, s2] = split_exponent(key.d, key.phi, rng);
  EXPECT_NE(u1, u2);
  EXPECT_NE(s1, s2);
}

TEST(Oaep, MaxMessageLength) {
  EXPECT_EQ(oaep_max_message(128), 128u - 64u - 2u);  // 1024-bit modulus
  EXPECT_EQ(oaep_max_message(66), 0u);
  EXPECT_EQ(oaep_max_message(10), 0u);
}

TEST(Oaep, EncodeDecodeRoundTrip) {
  HmacDrbg rng(79);
  const std::size_t k = 96;  // 768-bit modulus
  for (std::size_t len : {0u, 1u, 16u, 30u}) {
    Bytes msg(len);
    rng.fill(msg);
    const BigInt block = oaep_encode(msg, k, rng);
    EXPECT_LT(block.bit_length(), 8 * k);  // leading zero byte
    EXPECT_EQ(oaep_decode(block, k), msg);
  }
}

TEST(Oaep, EncodingIsRandomized) {
  HmacDrbg rng(80);
  const Bytes msg = str_bytes("same message");
  EXPECT_NE(oaep_encode(msg, 96, rng), oaep_encode(msg, 96, rng));
}

TEST(Oaep, RejectsOversizeMessage) {
  HmacDrbg rng(81);
  const Bytes msg(40, 0xaa);  // max for k=96 is 30
  EXPECT_THROW(oaep_encode(msg, 96, rng), InvalidArgument);
}

TEST(Oaep, DecodeRejectsTamperedBlock) {
  HmacDrbg rng(82);
  const Bytes msg = str_bytes("attack at dawn");
  const BigInt block = oaep_encode(msg, 96, rng);
  // Flip one bit.
  const BigInt tampered = block + BigInt(1);
  EXPECT_THROW(oaep_decode(tampered, 96), DecryptionError);
}

TEST(Oaep, DecodeRejectsRandomBlocks) {
  HmacDrbg rng(83);
  int rejects = 0;
  for (int i = 0; i < 20; ++i) {
    const BigInt junk = BigInt::random_bits(rng, 8 * 95);
    try {
      (void)oaep_decode(junk, 96);
    } catch (const DecryptionError&) {
      ++rejects;
    }
  }
  EXPECT_EQ(rejects, 20);  // overwhelming probability
}

TEST(Oaep, FullRsaOaepRoundTrip) {
  const PrivateKey key = test_key(84);
  HmacDrbg rng(85);
  const std::size_t k = key.pub.byte_size();
  const Bytes msg = str_bytes("OAEP over RSA-768");
  const BigInt c = public_op(key.pub, oaep_encode(msg, k, rng));
  EXPECT_EQ(oaep_decode(private_op(key, c), k), msg);
}

}  // namespace
}  // namespace medcrypt::rsa
