#include "obs/slo.h"

#include <algorithm>
#include <cstdio>

namespace medcrypt::obs {

std::vector<SloEngine::WindowSpec> SloEngine::default_windows() {
  return {{"5m", std::uint64_t{300} * 1'000'000'000ull},
          {"1h", std::uint64_t{3600} * 1'000'000'000ull}};
}

SloEngine::SloEngine(std::vector<WindowSpec> windows)
    : windows_(std::move(windows)) {}

void SloEngine::add(SloSpec spec) {
  specs_.push_back(Tracked{std::move(spec), {}});
}

double SloEngine::burn_rate(std::uint64_t good, std::uint64_t total,
                            double objective) {
  if (total == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(total - good) / static_cast<double>(total);
  const double budget = 1.0 - objective;
  if (budget <= 0.0) return 0.0;
  return bad_fraction / budget;
}

std::uint64_t SloEngine::good_at_or_below(const Histogram::Snapshot& h,
                                          std::uint64_t threshold) {
  std::uint64_t good = 0;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    if (h.buckets[i] == 0) continue;
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    if (lo > threshold) break;  // lower bounds are monotone in i
    // Upper end of this bucket: next bucket's lower bound, except the
    // saturation bucket whose effective end is the recorded max.
    const std::uint64_t hi = i + 1 < Histogram::kBucketCount
                                 ? Histogram::bucket_lower_bound(i + 1)
                                 : std::max(h.max, lo) + 1;
    if (hi - 1 <= threshold) {
      good += h.buckets[i];  // bucket entirely at or below the threshold
      continue;
    }
    // Straddling bucket: assume uniform spread across [lo, hi).
    const double frac = static_cast<double>(threshold - lo + 1) /
                        static_cast<double>(hi - lo);
    good += static_cast<std::uint64_t>(
        frac * static_cast<double>(h.buckets[i]) + 0.5);
  }
  return good;
}

namespace {

std::uint64_t counter_value(const MetricsSnapshot& snap,
                            const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const Histogram::Snapshot* find_histogram(const MetricsSnapshot& snap,
                                          const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h.hist;
  }
  return nullptr;
}

}  // namespace

void SloEngine::prune(Tracked& tr, std::uint64_t now_ns) const {
  std::uint64_t horizon = 0;
  for (const WindowSpec& w : windows_) horizon = std::max(horizon, w.span_ns);
  // Keep one sample beyond the widest window so a window edge always has
  // a predecessor to differentiate against.
  while (tr.ring.size() > 2 && tr.ring[1].t + horizon < now_ns) {
    tr.ring.pop_front();
  }
}

void SloEngine::tick(std::uint64_t now_ns, const MetricsSnapshot& snap) {
  for (Tracked& tr : specs_) {
    Sample s;
    s.t = now_ns;
    if (tr.spec.threshold_ns != 0) {
      if (const Histogram::Snapshot* h =
              find_histogram(snap, tr.spec.source_histogram)) {
        s.total = h->count;
        s.good = good_at_or_below(*h, tr.spec.threshold_ns);
      }
    } else {
      s.good = counter_value(snap, tr.spec.good_counter);
      s.total = s.good + counter_value(snap, tr.spec.bad_counter);
    }
    // Cumulative sources must be monotone; a reset (registry.reset() in
    // a bench) restarts the feed rather than producing negative deltas.
    if (!tr.ring.empty() && (s.good < tr.ring.back().good ||
                             s.total < tr.ring.back().total)) {
      tr.ring.clear();
    }
    tr.ring.push_back(s);
    prune(tr, now_ns);
  }
}

std::vector<SloEngine::Report> SloEngine::report() const {
  std::vector<Report> out;
  for (const Tracked& tr : specs_) {
    if (tr.ring.empty()) continue;
    const Sample& last = tr.ring.back();
    Report r;
    r.name = tr.spec.name;
    r.objective = tr.spec.objective;
    r.good = last.good;
    r.total = last.total;
    r.availability =
        last.total == 0 ? 1.0
                        : static_cast<double>(last.good) /
                              static_cast<double>(last.total);
    r.budget_consumed = burn_rate(last.good, last.total, tr.spec.objective);
    for (const WindowSpec& w : windows_) {
      // Baseline: the latest sample at or before the window start (fall
      // back to the oldest retained sample for short feeds).
      const std::uint64_t start =
          last.t >= w.span_ns ? last.t - w.span_ns : 0;
      const Sample* base = &tr.ring.front();
      for (const Sample& s : tr.ring) {
        if (s.t > start) break;
        base = &s;
      }
      Burn b;
      b.window = w.label;
      b.good = last.good - base->good;
      b.total = last.total - base->total;
      b.rate = burn_rate(b.good, b.total, tr.spec.objective);
      r.burns.push_back(std::move(b));
    }
    out.push_back(std::move(r));
  }
  return out;
}

void SloEngine::publish(MetricsRegistry& reg) const {
  constexpr double kPpm = 1e6;
  char name[128];
  for (const Report& r : report()) {
    std::snprintf(name, sizeof(name), "sem.slo.%s.objective_ppm",
                  r.name.c_str());
    reg.gauge(name).set(static_cast<std::int64_t>(r.objective * kPpm + 0.5));
    std::snprintf(name, sizeof(name), "sem.slo.%s.availability_ppm",
                  r.name.c_str());
    reg.gauge(name).set(
        static_cast<std::int64_t>(r.availability * kPpm + 0.5));
    std::snprintf(name, sizeof(name), "sem.slo.%s.budget_remaining_ppm",
                  r.name.c_str());
    reg.gauge(name).set(
        static_cast<std::int64_t>((1.0 - r.budget_consumed) * kPpm));
    for (const Burn& b : r.burns) {
      std::snprintf(name, sizeof(name), "sem.slo.%s.burn_%s_ppm",
                    r.name.c_str(), b.window.c_str());
      reg.gauge(name).set(static_cast<std::int64_t>(b.rate * kPpm + 0.5));
    }
  }
}

}  // namespace medcrypt::obs
