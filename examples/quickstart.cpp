// Quickstart: the mediated Boneh–Franklin IBE in ~60 lines.
//
//   1. A PKG sets up the system and enrolls Alice (splitting her key
//      between her and the SEM).
//   2. Bob encrypts to the *string* "alice@example.com" — no certificate
//      lookup, no revocation check, no SEM contact.
//   3. Alice decrypts with one SEM round trip.
//   4. The authority revokes Alice; her next decryption is denied
//      instantly.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "hash/drbg.h"
#include "mediated/mediated_ibe.h"
#include "pairing/params.h"

int main() {
  using namespace medcrypt;

  // System RNG (use hash::HmacDrbg{seed} for reproducible runs).
  hash::SystemRandom rng;

  // --- Setup: PKG + SEM at the paper's 512-bit/160-bit parameters ----------
  ibe::Pkg pkg(pairing::paper_params(), /*message_len=*/32, rng);
  auto revocations = std::make_shared<mediated::RevocationList>();
  mediated::IbeMediator sem(pkg.params(), revocations);

  // --- Enrollment: split Alice's key between her and the SEM ---------------
  auto alice = enroll_ibe_user(pkg, sem, "alice@example.com", rng);
  std::cout << "enrolled alice@example.com (key split user/SEM)\n";

  // --- Bob encrypts to Alice's identity string ------------------------------
  Bytes message = str_bytes("meet me at the crypto conference");
  message.resize(32, ' ');  // FullIdent encrypts fixed-size blocks
  const auto ciphertext =
      ibe::full_encrypt(pkg.params(), "alice@example.com", message, rng);
  std::cout << "bob encrypted " << ciphertext.to_bytes().size()
            << "-byte ciphertext to the identity string itself\n";

  // --- Alice decrypts (one SEM round trip) ----------------------------------
  sim::Transport wire;
  const Bytes decrypted = alice.decrypt(ciphertext, sem, &wire);
  std::cout << "alice decrypted: \""
            << std::string(decrypted.begin(), decrypted.end()) << "\"\n"
            << "  SEM round trip: " << wire.stats().to_server.bytes
            << " bytes up, " << wire.stats().to_client.bytes
            << " bytes down (one " << wire.stats().to_client.bytes * 8
            << "-bit token)\n";

  // --- Instant revocation ----------------------------------------------------
  revocations->revoke("alice@example.com");
  std::cout << "authority revoked alice@example.com\n";
  try {
    (void)alice.decrypt(ciphertext, sem);
    std::cout << "ERROR: decryption should have been denied!\n";
    return 1;
  } catch (const RevokedError& e) {
    std::cout << "next decryption denied by SEM: " << e.what() << "\n";
  }

  const auto stats = sem.stats();
  std::cout << "SEM audit: " << stats.tokens_issued << " tokens issued, "
            << stats.denials << " denials\n";
  return 0;
}
