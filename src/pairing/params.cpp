#include "pairing/params.h"

#include <map>
#include <mutex>
#include <string>

#include "common/error.h"
#include "hash/drbg.h"

namespace medcrypt::pairing {

namespace {

struct NamedSpec {
  std::size_t p_bits;
  std::size_t q_bits;
  std::uint64_t seed;
};

const std::map<std::string, NamedSpec, std::less<>>& specs() {
  static const std::map<std::string, NamedSpec, std::less<>> kSpecs = {
      {"toy64", {128, 64, 0x746f793634ULL}},
      {"mid128", {256, 128, 0x6d6964313238ULL}},
      {"sweep384", {384, 160, 0x73773338ULL}},
      {"sec80", {512, 160, 0x73656338ULL}},
  };
  return kSpecs;
}

}  // namespace

const ParamSet& named_params(std::string_view name) {
  static std::mutex mu;
  static std::map<std::string, ParamSet, std::less<>> cache;

  std::scoped_lock lock(mu);
  if (const auto it = cache.find(name); it != cache.end()) return it->second;

  const auto spec_it = specs().find(name);
  if (spec_it == specs().end()) {
    throw InvalidArgument("named_params: unknown parameter set '" +
                          std::string(name) + "'");
  }
  const NamedSpec& spec = spec_it->second;
  hash::HmacDrbg rng(spec.seed);
  auto [it, inserted] = cache.emplace(
      std::string(name), generate_params(spec.p_bits, spec.q_bits, rng));
  return it->second;
}

}  // namespace medcrypt::pairing
