// Correct obs usage that obs-secret-arg must NOT flag: the obs layer's
// own vocabulary (obs::Stage::kTokenIssue names a pipeline stage, it
// does not carry a token), callee positions, literals, and
// public-metadata tails.
namespace obs {
enum class Stage { kTokenIssue, kScalarMul };
struct Span {
  explicit Span(Stage) {}
};
struct Counter {
  void add(unsigned long) {}
};
Counter& counter(const char*);
struct TraceContext {
  static TraceContext current();
};
struct TraceScope {
  TraceScope(const char*, const TraceContext&) {}
};
}  // namespace obs

void trace_annotate(const char*, unsigned long);

unsigned long mul(unsigned long v);

void instrument_ok(unsigned long ops) {
  obs::Span issue_span(obs::Stage::kTokenIssue);
  obs::Span mul_span(obs::Stage::kScalarMul);
  const unsigned long key_len = 32;
  obs::counter("ops").add(1);
  obs::counter("ops").add(ops);
  obs::counter("meta").add(key_len);
  obs::counter("derived").add(mul(ops));
}

// Tracing vocabulary the extended check must NOT flag: string-literal
// pipeline names, TraceContext adoption (the context is an id, not key
// material), and numeric public-metadata baggage — bare or qualified.
void tracing_ok(unsigned long batch_width) {
  obs::TraceScope scope("ibe.issue_tokens", obs::TraceContext::current());
  trace_annotate("cache.hit", 1);
  trace_annotate("batch.requests", batch_width);
  const unsigned long share_len = 20;
  trace_annotate("share.bytes", share_len);
}
