// Tests for the hybrid (KEM/DEM) layer over FullIdent.
#include <gtest/gtest.h>

#include "common/error.h"
#include "hash/drbg.h"
#include "ibe/hybrid.h"
#include "ibe/pkg.h"
#include "mediated/mediated_ibe.h"
#include "pairing/params.h"

namespace medcrypt::ibe {
namespace {

using hash::HmacDrbg;

class HybridTest : public ::testing::Test {
 protected:
  HybridTest() : rng_(600), pkg_(pairing::toy_params(), kSessionKeyLen, rng_) {}

  HmacDrbg rng_;
  Pkg pkg_;
};

TEST_F(HybridTest, RoundTripVariousLengths) {
  const auto d = pkg_.extract("alice");
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 1000u, 65536u}) {
    Bytes msg(len);
    rng_.fill(msg);
    const HybridCiphertext ct = seal(pkg_.params(), "alice", msg, rng_);
    EXPECT_EQ(open(pkg_.params(), d, ct), msg) << "len = " << len;
  }
}

TEST_F(HybridTest, TamperingAnywhereRejected) {
  const auto d = pkg_.extract("alice");
  Bytes msg(100);
  rng_.fill(msg);
  {
    HybridCiphertext ct = seal(pkg_.params(), "alice", msg, rng_);
    ct.body[50] ^= 1;
    EXPECT_THROW(open(pkg_.params(), d, ct), DecryptionError);
  }
  {
    HybridCiphertext ct = seal(pkg_.params(), "alice", msg, rng_);
    ct.tag[0] ^= 1;
    EXPECT_THROW(open(pkg_.params(), d, ct), DecryptionError);
  }
  {
    HybridCiphertext ct = seal(pkg_.params(), "alice", msg, rng_);
    ct.key_block.v[0] ^= 1;
    EXPECT_THROW(open(pkg_.params(), d, ct), DecryptionError);
  }
  {
    // Body truncation.
    HybridCiphertext ct = seal(pkg_.params(), "alice", msg, rng_);
    ct.body.pop_back();
    EXPECT_THROW(open(pkg_.params(), d, ct), DecryptionError);
  }
}

TEST_F(HybridTest, WrongIdentityRejected) {
  Bytes msg(64);
  rng_.fill(msg);
  const HybridCiphertext ct = seal(pkg_.params(), "alice", msg, rng_);
  EXPECT_THROW(open(pkg_.params(), pkg_.extract("bob"), ct), DecryptionError);
}

TEST_F(HybridTest, SerializationRoundTrip) {
  const auto d = pkg_.extract("alice");
  Bytes msg(777);
  rng_.fill(msg);
  const HybridCiphertext ct = seal(pkg_.params(), "alice", msg, rng_);
  const HybridCiphertext ct2 =
      HybridCiphertext::from_bytes(pkg_.params(), ct.to_bytes());
  EXPECT_EQ(open(pkg_.params(), d, ct2), msg);
  EXPECT_THROW(HybridCiphertext::from_bytes(pkg_.params(), Bytes(10, 0)),
               InvalidArgument);
}

TEST_F(HybridTest, CiphertextOverheadIsConstant) {
  Bytes msg(1000);
  rng_.fill(msg);
  const HybridCiphertext ct = seal(pkg_.params(), "alice", msg, rng_);
  const std::size_t overhead = ct.to_bytes().size() - msg.size();
  Bytes msg2(5000);
  rng_.fill(msg2);
  const HybridCiphertext ct2 = seal(pkg_.params(), "alice", msg2, rng_);
  EXPECT_EQ(ct2.to_bytes().size() - msg2.size(), overhead);
}

TEST_F(HybridTest, MediatedPathDecrypts) {
  // The mediated deployment: the SEM sees only the key block's U; the
  // body never crosses the SEM.
  auto revocations = std::make_shared<mediated::RevocationList>();
  mediated::IbeMediator sem(pkg_.params(), revocations);
  auto alice = enroll_ibe_user(pkg_, sem, "alice", rng_);

  Bytes msg(4096);
  rng_.fill(msg);
  const HybridCiphertext ct = seal(pkg_.params(), "alice", msg, rng_);

  sim::Transport tr;
  const Bytes session_key = alice.decrypt(ct.key_block, sem, &tr);
  EXPECT_EQ(open_with_session_key(session_key, ct), msg);
  // SEM traffic is independent of the body size.
  EXPECT_LT(tr.stats().total_bytes(), 300u);

  revocations->revoke("alice");
  EXPECT_THROW(alice.decrypt(ct.key_block, sem), RevokedError);
}

TEST_F(HybridTest, RequiresMatchingBlockSize) {
  HmacDrbg rng(601);
  Pkg wrong(pairing::toy_params(), 16, rng);  // block != kSessionKeyLen
  EXPECT_THROW(seal(wrong.params(), "x", Bytes(10, 0), rng), InvalidArgument);
}

}  // namespace
}  // namespace medcrypt::ibe
