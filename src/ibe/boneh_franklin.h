// The Boneh–Franklin identity-based encryption scheme [BF01], in both
// variants the paper builds on:
//
//   BasicIdent  (IND-ID-CPA)  C = < rP, m ⊕ H2(ê(P_pub, Q_ID)^r) >
//   FullIdent   (IND-ID-CCA)  Fujisaki–Okamoto transform of BasicIdent:
//       σ random, r = H3(σ, M),
//       C = < rP, σ ⊕ H2(g^r), M ⊕ H4(σ) >  with g = ê(P_pub, Q_ID)
//
// The mediated scheme of §4 encrypts exactly like FullIdent; its
// decryption splits the computation of g_r = ê(U, d_ID) between user and
// SEM. To support that split, the FullIdent unmasking step is exposed
// separately (full_decrypt_with_mask).
//
// All random oracles are domain-separated SHA-256 constructions:
//   H1 : identities -> G1        (ec::hash_to_subgroup, domain "BF.H1")
//   H2 : G2 -> {0,1}^n           (kdf::expand over the Fp2 serialization)
//   H3 : {0,1}^n x {0,1}^n -> Zq (kdf::hash_to_range)
//   H4 : {0,1}^n -> {0,1}^n      (kdf::expand)
#pragma once

#include <string_view>

#include "ec/point.h"
#include "field/fp2.h"
#include "pairing/param_gen.h"
#include "pairing/tate.h"

namespace medcrypt::ibe {

using bigint::BigInt;
using ec::Point;
using field::Fp2;

/// Public system parameters published by the PKG: the pairing group, the
/// public point P_pub = sP, and the plaintext length n.
struct SystemParams {
  pairing::ParamSet group;
  Point p_pub;
  std::size_t message_len = 32;

  /// Fixed-base table for p_pub; the PKG/dealer fills it at setup so
  /// every encryption's r·P_pub is a table walk. Optional: hand-built
  /// params without one fall back to the generic ladder.
  std::shared_ptr<const ec::FixedBaseTable> p_pub_table;

  const std::shared_ptr<const ec::Curve>& curve() const { return group.curve; }
  const Point& generator() const { return group.generator; }
  const BigInt& order() const { return group.order(); }

  /// k·P_pub through the precomputed table when present.
  Point mul_p_pub(const BigInt& k) const {
    return p_pub_table ? p_pub_table->mul(k) : p_pub.mul(k);
  }
};

/// H1: maps an identity string to Q_ID in G1.
Point map_identity(const SystemParams& params, std::string_view identity);

/// H2: masks derived from pairing values.
Bytes mask_from_g(const Fp2& g, std::size_t n);

/// H3: (sigma, message) -> r in Z_q. FullIdent's encryption randomness.
BigInt derive_r(BytesView sigma, BytesView message, const BigInt& q);

/// H4: sigma-derived message mask.
Bytes mask_from_sigma(BytesView sigma, std::size_t n);

// ---------------------------------------------------------------------------
// BasicIdent
// ---------------------------------------------------------------------------

/// BasicIdent ciphertext <U, V>.
struct BasicCiphertext {
  Point u;
  Bytes v;

  Bytes to_bytes() const;
  static BasicCiphertext from_bytes(const SystemParams& params, BytesView b);
};

/// Encrypts `message` (must be exactly params.message_len bytes) for
/// `identity`. IND-ID-CPA only — malleable by construction.
BasicCiphertext basic_encrypt(const SystemParams& params,
                              std::string_view identity, BytesView message,
                              RandomSource& rng);

/// Decrypts with the full private key d_ID = s·Q_ID. Never fails on
/// well-formed ciphertexts (no integrity: wrong keys give garbage).
Bytes basic_decrypt(const SystemParams& params, const Point& private_key,
                    const BasicCiphertext& ct);

// ---------------------------------------------------------------------------
// FullIdent
// ---------------------------------------------------------------------------

/// FullIdent ciphertext <U, V, W>.
struct FullCiphertext {
  Point u;
  Bytes v;
  Bytes w;

  Bytes to_bytes() const;
  static FullCiphertext from_bytes(const SystemParams& params, BytesView b);
};

/// Encrypts `message` (exactly params.message_len bytes) for `identity`.
FullCiphertext full_encrypt(const SystemParams& params,
                            std::string_view identity, BytesView message,
                            RandomSource& rng);

/// Decrypts with the full private key; throws DecryptionError if the
/// Fujisaki–Okamoto validity check U = H3(σ, M)·P fails.
Bytes full_decrypt(const SystemParams& params, const Point& private_key,
                   const FullCiphertext& ct);

/// The unmasking half of FullIdent decryption, given the pairing value
/// g_r = ê(U, d_ID) however it was obtained (directly, or recombined from
/// SEM + user tokens in the mediated scheme, or from threshold shares).
/// Performs the same validity check as full_decrypt.
Bytes full_decrypt_with_mask(const SystemParams& params, const Fp2& g_r,
                             const FullCiphertext& ct);

}  // namespace medcrypt::ibe
