#include "mediated/signcryption.h"

namespace medcrypt::mediated {

namespace {

// Length-framed encoding so (M, A, B) parse unambiguously.
void append_framed(Bytes& out, BytesView piece) {
  const std::uint32_t len = static_cast<std::uint32_t>(piece.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (24 - 8 * i)));
  }
  out.insert(out.end(), piece.begin(), piece.end());
}

}  // namespace

Bytes signcryption_binding(BytesView message, std::string_view sender,
                           std::string_view recipient) {
  Bytes out;
  out.reserve(12 + message.size() + sender.size() + recipient.size());
  append_framed(out, message);
  append_framed(out, str_bytes(sender));
  append_framed(out, str_bytes(recipient));
  return out;
}

SigncryptionParams make_signcryption_params(const ibe::SystemParams& ibe,
                                            pairing::ParamSet sig_group,
                                            std::size_t message_len) {
  SigncryptionParams params;
  params.ibe = ibe;
  params.sig_group = std::move(sig_group);
  params.message_len = message_len;
  if (ibe.message_len != params.payload_len()) {
    throw InvalidArgument(
        "make_signcryption_params: IBE block must fit message + signature "
        "(use make_signcryption_pkg)");
  }
  return params;
}

ibe::Pkg make_signcryption_pkg(const pairing::ParamSet& ibe_group,
                               const pairing::ParamSet& sig_group,
                               std::size_t message_len, RandomSource& rng) {
  return ibe::Pkg(ibe_group,
                  message_len + sig_group.curve->compressed_size(), rng);
}

Signcrypter::Signcrypter(SigncryptionParams params, MediatedGdhUser signer)
    : params_(std::move(params)), signer_(std::move(signer)) {}

Signcrypted Signcrypter::signcrypt(BytesView message,
                                   std::string_view recipient,
                                   const GdhMediator& sig_sem,
                                   RandomSource& rng,
                                   sim::Transport* transport) const {
  if (message.size() != params_.message_len) {
    throw InvalidArgument("Signcrypter: message must be message_len bytes");
  }
  // 1. Mediated signature over the sender/recipient-bound statement.
  const Bytes statement =
      signcryption_binding(message, signer_.identity(), recipient);
  const ec::Point sigma = signer_.sign(statement, sig_sem, transport);

  // 2. FullIdent-encrypt M ‖ σ to the recipient identity.
  const Bytes payload = concat(message, sigma.to_bytes());
  return Signcrypted{signer_.identity(),
                     ibe::full_encrypt(params_.ibe, recipient, payload, rng)};
}

Unsigncrypter::Unsigncrypter(SigncryptionParams params,
                             MediatedIbeUser receiver)
    : params_(std::move(params)), receiver_(std::move(receiver)) {}

Bytes Unsigncrypter::unsigncrypt(const Signcrypted& msg,
                                 const ec::Point& sender_key,
                                 const IbeMediator& ibe_sem,
                                 sim::Transport* transport) const {
  // 1. Mediated decryption (revocation checked by the SEM).
  const Bytes payload = receiver_.decrypt(msg.ct, ibe_sem, transport);
  if (payload.size() != params_.payload_len()) {
    throw DecryptionError("Unsigncrypter: malformed payload");
  }
  const Bytes message(payload.begin(),
                      payload.begin() + static_cast<std::ptrdiff_t>(
                                            params_.message_len));
  const BytesView sig_bytes(payload.data() + params_.message_len,
                            payload.size() - params_.message_len);
  ec::Point sigma;
  try {
    sigma = params_.sig_group.curve->decompress(sig_bytes);
  } catch (const InvalidArgument&) {
    throw ProofError("Unsigncrypter: embedded signature is not a point");
  }

  // 2. Verify under the claimed sender.
  if (!verify_opened(params_, message, sigma, msg.sender,
                     receiver_.identity(), sender_key)) {
    throw ProofError("Unsigncrypter: signature verification failed");
  }
  return message;
}

bool verify_opened(const SigncryptionParams& params, BytesView message,
                   const ec::Point& signature, std::string_view sender,
                   std::string_view recipient, const ec::Point& sender_key) {
  const Bytes statement = signcryption_binding(message, sender, recipient);
  return gdh::verify(params.sig_group, sender_key, statement, signature);
}

}  // namespace medcrypt::mediated
