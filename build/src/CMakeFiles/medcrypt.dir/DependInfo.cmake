
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bigint/bigint.cpp" "src/CMakeFiles/medcrypt.dir/bigint/bigint.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/bigint/bigint.cpp.o.d"
  "/root/repo/src/bigint/montgomery.cpp" "src/CMakeFiles/medcrypt.dir/bigint/montgomery.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/bigint/montgomery.cpp.o.d"
  "/root/repo/src/bigint/prime.cpp" "src/CMakeFiles/medcrypt.dir/bigint/prime.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/bigint/prime.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/medcrypt.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/medcrypt.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/common/error.cpp.o.d"
  "/root/repo/src/ec/curve.cpp" "src/CMakeFiles/medcrypt.dir/ec/curve.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/ec/curve.cpp.o.d"
  "/root/repo/src/ec/hash_to_point.cpp" "src/CMakeFiles/medcrypt.dir/ec/hash_to_point.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/ec/hash_to_point.cpp.o.d"
  "/root/repo/src/ec/jacobian.cpp" "src/CMakeFiles/medcrypt.dir/ec/jacobian.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/ec/jacobian.cpp.o.d"
  "/root/repo/src/ec/point.cpp" "src/CMakeFiles/medcrypt.dir/ec/point.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/ec/point.cpp.o.d"
  "/root/repo/src/elgamal/ec_elgamal.cpp" "src/CMakeFiles/medcrypt.dir/elgamal/ec_elgamal.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/elgamal/ec_elgamal.cpp.o.d"
  "/root/repo/src/elgamal/fo_transform.cpp" "src/CMakeFiles/medcrypt.dir/elgamal/fo_transform.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/elgamal/fo_transform.cpp.o.d"
  "/root/repo/src/field/fp.cpp" "src/CMakeFiles/medcrypt.dir/field/fp.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/field/fp.cpp.o.d"
  "/root/repo/src/field/fp2.cpp" "src/CMakeFiles/medcrypt.dir/field/fp2.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/field/fp2.cpp.o.d"
  "/root/repo/src/games/ind_id_cca.cpp" "src/CMakeFiles/medcrypt.dir/games/ind_id_cca.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/games/ind_id_cca.cpp.o.d"
  "/root/repo/src/games/ind_id_tcpa.cpp" "src/CMakeFiles/medcrypt.dir/games/ind_id_tcpa.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/games/ind_id_tcpa.cpp.o.d"
  "/root/repo/src/games/ind_mid_wcca.cpp" "src/CMakeFiles/medcrypt.dir/games/ind_mid_wcca.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/games/ind_mid_wcca.cpp.o.d"
  "/root/repo/src/games/reduction.cpp" "src/CMakeFiles/medcrypt.dir/games/reduction.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/games/reduction.cpp.o.d"
  "/root/repo/src/games/tcpa_simulator.cpp" "src/CMakeFiles/medcrypt.dir/games/tcpa_simulator.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/games/tcpa_simulator.cpp.o.d"
  "/root/repo/src/gdh/aggregate.cpp" "src/CMakeFiles/medcrypt.dir/gdh/aggregate.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/gdh/aggregate.cpp.o.d"
  "/root/repo/src/gdh/bls.cpp" "src/CMakeFiles/medcrypt.dir/gdh/bls.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/gdh/bls.cpp.o.d"
  "/root/repo/src/hash/drbg.cpp" "src/CMakeFiles/medcrypt.dir/hash/drbg.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/hash/drbg.cpp.o.d"
  "/root/repo/src/hash/hmac.cpp" "src/CMakeFiles/medcrypt.dir/hash/hmac.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/hash/hmac.cpp.o.d"
  "/root/repo/src/hash/kdf.cpp" "src/CMakeFiles/medcrypt.dir/hash/kdf.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/hash/kdf.cpp.o.d"
  "/root/repo/src/hash/sha256.cpp" "src/CMakeFiles/medcrypt.dir/hash/sha256.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/hash/sha256.cpp.o.d"
  "/root/repo/src/ibe/boneh_franklin.cpp" "src/CMakeFiles/medcrypt.dir/ibe/boneh_franklin.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/ibe/boneh_franklin.cpp.o.d"
  "/root/repo/src/ibe/hybrid.cpp" "src/CMakeFiles/medcrypt.dir/ibe/hybrid.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/ibe/hybrid.cpp.o.d"
  "/root/repo/src/ibe/pkg.cpp" "src/CMakeFiles/medcrypt.dir/ibe/pkg.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/ibe/pkg.cpp.o.d"
  "/root/repo/src/ibs/hess.cpp" "src/CMakeFiles/medcrypt.dir/ibs/hess.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/ibs/hess.cpp.o.d"
  "/root/repo/src/mediated/ib_mrsa.cpp" "src/CMakeFiles/medcrypt.dir/mediated/ib_mrsa.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/mediated/ib_mrsa.cpp.o.d"
  "/root/repo/src/mediated/mediated_elgamal.cpp" "src/CMakeFiles/medcrypt.dir/mediated/mediated_elgamal.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/mediated/mediated_elgamal.cpp.o.d"
  "/root/repo/src/mediated/mediated_gdh.cpp" "src/CMakeFiles/medcrypt.dir/mediated/mediated_gdh.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/mediated/mediated_gdh.cpp.o.d"
  "/root/repo/src/mediated/mediated_ibe.cpp" "src/CMakeFiles/medcrypt.dir/mediated/mediated_ibe.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/mediated/mediated_ibe.cpp.o.d"
  "/root/repo/src/mediated/mediated_ibs.cpp" "src/CMakeFiles/medcrypt.dir/mediated/mediated_ibs.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/mediated/mediated_ibs.cpp.o.d"
  "/root/repo/src/mediated/mrsa.cpp" "src/CMakeFiles/medcrypt.dir/mediated/mrsa.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/mediated/mrsa.cpp.o.d"
  "/root/repo/src/mediated/sem_server.cpp" "src/CMakeFiles/medcrypt.dir/mediated/sem_server.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/mediated/sem_server.cpp.o.d"
  "/root/repo/src/mediated/signcryption.cpp" "src/CMakeFiles/medcrypt.dir/mediated/signcryption.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/mediated/signcryption.cpp.o.d"
  "/root/repo/src/pairing/param_gen.cpp" "src/CMakeFiles/medcrypt.dir/pairing/param_gen.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/pairing/param_gen.cpp.o.d"
  "/root/repo/src/pairing/params.cpp" "src/CMakeFiles/medcrypt.dir/pairing/params.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/pairing/params.cpp.o.d"
  "/root/repo/src/pairing/tate.cpp" "src/CMakeFiles/medcrypt.dir/pairing/tate.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/pairing/tate.cpp.o.d"
  "/root/repo/src/revocation/crl.cpp" "src/CMakeFiles/medcrypt.dir/revocation/crl.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/revocation/crl.cpp.o.d"
  "/root/repo/src/revocation/revocation.cpp" "src/CMakeFiles/medcrypt.dir/revocation/revocation.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/revocation/revocation.cpp.o.d"
  "/root/repo/src/revocation/validity_period.cpp" "src/CMakeFiles/medcrypt.dir/revocation/validity_period.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/revocation/validity_period.cpp.o.d"
  "/root/repo/src/rsa/oaep.cpp" "src/CMakeFiles/medcrypt.dir/rsa/oaep.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/rsa/oaep.cpp.o.d"
  "/root/repo/src/rsa/rsa.cpp" "src/CMakeFiles/medcrypt.dir/rsa/rsa.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/rsa/rsa.cpp.o.d"
  "/root/repo/src/shamir/shamir.cpp" "src/CMakeFiles/medcrypt.dir/shamir/shamir.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/shamir/shamir.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "src/CMakeFiles/medcrypt.dir/sim/clock.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/sim/clock.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/medcrypt.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/transport.cpp" "src/CMakeFiles/medcrypt.dir/sim/transport.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/sim/transport.cpp.o.d"
  "/root/repo/src/threshold/dkg.cpp" "src/CMakeFiles/medcrypt.dir/threshold/dkg.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/threshold/dkg.cpp.o.d"
  "/root/repo/src/threshold/robust.cpp" "src/CMakeFiles/medcrypt.dir/threshold/robust.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/threshold/robust.cpp.o.d"
  "/root/repo/src/threshold/threshold_elgamal.cpp" "src/CMakeFiles/medcrypt.dir/threshold/threshold_elgamal.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/threshold/threshold_elgamal.cpp.o.d"
  "/root/repo/src/threshold/threshold_gdh.cpp" "src/CMakeFiles/medcrypt.dir/threshold/threshold_gdh.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/threshold/threshold_gdh.cpp.o.d"
  "/root/repo/src/threshold/threshold_ibe.cpp" "src/CMakeFiles/medcrypt.dir/threshold/threshold_ibe.cpp.o" "gcc" "src/CMakeFiles/medcrypt.dir/threshold/threshold_ibe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
