// A (t, n) threshold key-management service built on the paper's §3
// threshold Boneh–Franklin IBE — with a byzantine decryption server.
//
// Five decryption servers share the PKG master key with threshold 3.
// A client asks for a document to be decrypted; servers return
// decryption shares WITH the §3.2 robustness proofs. Server 2 is
// byzantine and returns garbage: the recombiner detects it via the NIZK,
// excludes it, decrypts from honest shares, and finally the honest
// servers reconstruct the cheater's key share (§3.2 cheater exclusion).
//
// Build & run:  cmake --build build && ./build/examples/threshold_kms
#include <iostream>
#include <vector>

#include "hash/drbg.h"
#include "pairing/params.h"
#include "threshold/threshold_ibe.h"

int main() {
  using namespace medcrypt;
  hash::HmacDrbg rng(77);

  constexpr std::size_t kThreshold = 3, kServers = 5;
  std::cout << "== threshold KMS: t = " << kThreshold << ", n = " << kServers
            << " ==\n";

  // Dealer setup (the PKG shares its master key among the servers).
  threshold::ThresholdDealer dealer(pairing::paper_params(), 32, kThreshold,
                                    kServers, rng);
  const auto& setup = dealer.setup();

  // Each server validates the public verification keys (§3 Setup check).
  const std::vector<std::uint32_t> check_set = {1, 2, 3};
  std::cout << "servers check sum_i L_i * Ppub_i == Ppub: "
            << (verify_setup_consistency(setup, check_set) ? "OK" : "FAIL")
            << "\n";

  // Key shares for the vault identity, verified by each server on receipt
  // (§3 Keygen check — a bad share would trigger a complaint).
  const std::string vault = "vault:quarterly-report";
  auto key_shares = dealer.extract_shares(vault);
  for (const auto& ks : key_shares) {
    if (!verify_key_share(setup, vault, ks)) {
      std::cout << "server " << ks.index << " complains: bad key share!\n";
      return 1;
    }
  }
  std::cout << "all " << kServers << " key shares verified against the PKG\n\n";

  // A client stores an encrypted document.
  Bytes document = str_bytes("Q3 revenue: 42 million");
  document.resize(32, ' ');
  const auto ct = ibe::full_encrypt(setup.params, vault, document, rng);
  std::cout << "document encrypted to identity \"" << vault << "\"\n";

  // Decryption request: every server responds with share + NIZK proof;
  // server 2 is byzantine.
  std::vector<threshold::DecryptionShare> shares;
  for (const auto& ks : key_shares) {
    auto share = compute_decryption_share(setup, ks, ct.u, /*prove=*/true, rng);
    if (ks.index == 2) {
      share.value = share.value.square();  // lies about its share
      std::cout << "server 2 responds with a CORRUPTED share\n";
    }
    shares.push_back(std::move(share));
  }

  // The recombiner verifies proofs and keeps the first t valid shares.
  const auto valid = select_valid_shares(setup, vault, ct.u, shares);
  std::cout << "recombiner accepted shares from servers:";
  for (const auto& s : valid) std::cout << " " << s.index;
  std::cout << "  (server 2 excluded by proof check)\n";

  const Bytes plain = threshold_full_decrypt(setup, valid, ct);
  std::cout << "decrypted: \""
            << std::string(plain.begin(), plain.end()) << "\"\n\n";

  // §3.2 cheater exclusion: three honest servers reconstruct server 2's
  // key share so the system can continue at full strength.
  const std::vector<threshold::KeyShare> honest = {key_shares[0], key_shares[2],
                                                   key_shares[4]};
  const ec::Point recovered = recover_key_share(setup, honest, /*target=*/2);
  std::cout << "honest servers reconstruct server 2's key share: "
            << (recovered == key_shares[1].value ? "MATCH" : "MISMATCH")
            << "\n";
  return 0;
}
