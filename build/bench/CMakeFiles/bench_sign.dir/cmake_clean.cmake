file(REMOVE_RECURSE
  "CMakeFiles/bench_sign.dir/bench_sign.cpp.o"
  "CMakeFiles/bench_sign.dir/bench_sign.cpp.o.d"
  "bench_sign"
  "bench_sign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
