// Communication accounting for the mediated protocols.
//
// The paper's efficiency claims (§4–§5) are about *bits on the wire per
// operation* — the SEM token is 160 bits for mediated GDH vs 1024 for
// mRSA. LinkStats counts messages and bytes per direction so the
// bench_comm experiment can print exactly those rows.
//
// LinkStats is also a *view* over the obs registry: every record()
// mirrors into the process-wide "sim.link.*" counters, so bench_comm
// tables and a registry scrape report from the same events. The local
// fields stay per-link (and reset() clears only them); the registry
// series aggregate across all links for the life of the process.
#pragma once

#include <cstdint>

#include "obs/registry.h"

namespace medcrypt::sim {

/// Byte/message counters for one direction of a link.
struct DirectionStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  void record(std::uint64_t n) {
    ++messages;
    bytes += n;
    if (mirror_messages != nullptr) {
      mirror_messages->add(1);
      mirror_bytes->add(n);
    }
  }

  // Registry mirrors, wired by LinkStats (null for a bare
  // DirectionStats, and stubs compile the calls away with obs OFF).
  obs::Counter* mirror_messages = nullptr;
  obs::Counter* mirror_bytes = nullptr;
};

/// Counters for one bidirectional link (client <-> server).
struct LinkStats {
  DirectionStats to_server;
  DirectionStats to_client;

  LinkStats() {
    auto& reg = obs::registry();
    to_server.mirror_messages = &reg.counter("sim.link.to_server.messages");
    to_server.mirror_bytes = &reg.counter("sim.link.to_server.bytes");
    to_client.mirror_messages = &reg.counter("sim.link.to_client.messages");
    to_client.mirror_bytes = &reg.counter("sim.link.to_client.bytes");
  }

  std::uint64_t total_bytes() const { return to_server.bytes + to_client.bytes; }
  std::uint64_t total_messages() const {
    return to_server.messages + to_client.messages;
  }

  /// Clears this link's local tallies. The registry's "sim.link.*"
  /// series are cumulative across resets by design (monotone counters).
  void reset() { *this = LinkStats{}; }
};

}  // namespace medcrypt::sim
