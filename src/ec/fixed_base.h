// Precomputed windowed tables for fixed-base scalar multiplication.
//
// jac_mul rebuilds a 14-entry window table on every call, even when the
// base is the system-wide generator P or public key P_pub that every
// protocol operation multiplies by. A FixedBaseTable pays that setup
// once: it stores d·16^w·B for every 4-bit window position w and digit
// d in [1, 15], batch-inverted to affine (one inversion per window at
// build time), so one scalar multiplication is just ceil(bits(q)/4)
// mixed additions — no doublings and no per-call table.
//
// Memory cost: ceil(bits(order)/4) × 15 affine points (≈ 600 points,
// ~77 KiB at the paper's 512-bit sec80 parameters) per cached base.
// Owners: ParamSet holds the generator's table, SystemParams holds
// P_pub's, and the IBS mediator holds one per installed per-identity
// key half — the latter are secret-derived, hence wipe().
#pragma once

#include <memory>
#include <vector>

#include "bigint/bigint.h"
#include "ec/jacobian.h"
#include "ec/point.h"

namespace medcrypt::ec {

class FixedBaseTable {
 public:
  /// Empty table; only empty() and wipe() are valid on it.
  FixedBaseTable() = default;

  /// Precomputes the window table for `base`, whose order must divide
  /// `order` (scalars are reduced mod `order` before use). An infinity
  /// base yields a table whose mul() is constantly infinity.
  FixedBaseTable(const Point& base, bigint::BigInt order);

  bool empty() const { return curve_ == nullptr; }
  const Point& base() const { return base_; }

  /// Number of stored affine points (the table's memory footprint).
  std::size_t point_count() const { return table_.size(); }

  /// k·B. Scalars are reduced mod the table's order first, so k = 0,
  /// k = order and k > order all behave like the generic ladder.
  Point mul(const bigint::BigInt& k) const;

  /// Same, but leaves the result in Jacobian form so callers combining
  /// several fixed-base results can share one batched inversion.
  JacPoint mul_jac(const bigint::BigInt& k) const;

  /// Scrubs every stored point (the table of a secret base is itself
  /// secret) and returns to the empty state.
  void wipe();

 private:
  static constexpr int kWindow = 4;
  static constexpr unsigned kDigits = (1u << kWindow) - 1;  // 15

  std::shared_ptr<const Curve> curve_;
  Point base_;
  bigint::BigInt order_;
  std::size_t windows_ = 0;
  std::vector<Point> table_;  // windows_ × kDigits entries, affine
};

}  // namespace medcrypt::ec
