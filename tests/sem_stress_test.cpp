// Concurrency stress test for the sharded SEM registry and the
// epoch-published revocation snapshot (docs/SEM_SERVICE.md).
//
// >= 8 threads hammer one GdhMediator: issuers request tokens, an
// installer churns key halves for a disjoint set of identities, and a
// revoker flips revocation state back and forth. The assertions pin:
//   - no torn reads: identities whose halves are never reinstalled
//     always produce the same (correct) token;
//   - the audit counters exactly account for every attempt;
//   - after a final revocation epoch flip, every identity is denied.
//
// Run it under TSan with -DMEDCRYPT_SANITIZE=thread (CI's tsan job does;
// the test itself has no sanitizer dependency).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "hash/drbg.h"
#include "mediated/mediated_gdh.h"
#include "pairing/params.h"

namespace medcrypt::mediated {
namespace {

using hash::HmacDrbg;

TEST(SemStress, ConcurrentInstallRevokeIssue) {
  const auto& group = pairing::toy_params();
  auto revocations = std::make_shared<RevocationList>();
  GdhMediator sem(group, revocations);

  constexpr int kStableIds = 4;   // never reinstalled after setup
  constexpr int kChurnedIds = 4;  // installer rewrites these in a loop
  constexpr int kIssuerThreads = 8;
  constexpr int kOpsPerIssuer = 200;

  HmacDrbg rng(777);
  std::vector<std::string> ids;
  std::vector<ec::Point> expected;  // stable ids' reference tokens
  const Bytes msg = str_bytes("stress probe");
  for (int i = 0; i < kStableIds + kChurnedIds; ++i) {
    ids.push_back("user" + std::to_string(i));
    bigint::BigInt x_sem =
        bigint::BigInt::random_unit(rng, group.order());
    if (i < kStableIds) {
      expected.push_back(gdh::hash_message(group, msg).mul(x_sem));
    }
    sem.install_key(ids.back(), std::move(x_sem));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> issued{0}, denied{0}, unknown{0};
  std::atomic<bool> torn_read{false};
  std::vector<std::thread> pool;

  // Issuers: round-robin over all identities plus one unknown.
  for (int t = 0; t < kIssuerThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerIssuer; ++i) {
        const int pick = (t + i) % (kStableIds + kChurnedIds + 1);
        const std::string_view id =
            pick < kStableIds + kChurnedIds ? std::string_view(ids[pick])
                                            : std::string_view("mallory");
        try {
          const ec::Point token = sem.issue_token(id, msg);
          issued.fetch_add(1);
          // Stable identities are installed once and never revoked:
          // any deviation from the reference token is a torn read.
          if (pick < kStableIds && !(token == expected[pick])) {
            torn_read.store(true);
          }
        } catch (const RevokedError&) {
          denied.fetch_add(1);
        } catch (const InvalidArgument&) {
          unknown.fetch_add(1);
        }
      }
    });
  }

  // Installer: churns the non-stable identities with fresh halves.
  pool.emplace_back([&] {
    HmacDrbg install_rng(778);
    while (!stop.load()) {
      for (int i = kStableIds; i < kStableIds + kChurnedIds; ++i) {
        sem.install_key(ids[i],
                        bigint::BigInt::random_unit(install_rng, group.order()));
      }
    }
  });

  // Revoker: flips churned identities revoked/unrevoked.
  pool.emplace_back([&] {
    while (!stop.load()) {
      for (int i = kStableIds; i < kStableIds + kChurnedIds; ++i) {
        revocations->revoke(ids[i]);
      }
      for (int i = kStableIds; i < kStableIds + kChurnedIds; ++i) {
        revocations->unrevoke(ids[i]);
      }
    }
  });

  for (int t = 0; t < kIssuerThreads; ++t) pool[t].join();
  stop.store(true);
  pool[kIssuerThreads].join();
  pool[kIssuerThreads + 1].join();

  EXPECT_FALSE(torn_read.load());

  // Every attempt landed in exactly one bucket, and the mediator's audit
  // counters agree with the issuers' own accounting.
  const std::uint64_t attempts =
      static_cast<std::uint64_t>(kIssuerThreads) * kOpsPerIssuer;
  EXPECT_EQ(issued.load() + denied.load() + unknown.load(), attempts);
  const SemStats stats = sem.stats();
  EXPECT_EQ(stats.tokens_issued, issued.load());
  EXPECT_EQ(stats.denials, denied.load());
  EXPECT_EQ(stats.unknown_identities, unknown.load());

  // Epoch flip: after the final revocations publish, every in-registry
  // identity is denied — the paper's instantaneous revocation, now with
  // a precise visibility point (the snapshot publication).
  const std::uint64_t epoch_before = revocations->epoch();
  for (const std::string& id : ids) revocations->revoke(id);
  EXPECT_GE(revocations->epoch(),
            epoch_before + kStableIds);  // churned ids may already be revoked
  for (const std::string& id : ids) {
    EXPECT_THROW((void)sem.issue_token(id, msg), RevokedError) << id;
  }
}

TEST(SemStress, ParallelReadersShareOneShardSafely) {
  // All readers target ONE identity (one shard): shared locks must allow
  // them through concurrently and the token must be bit-identical every
  // time.
  const auto& group = pairing::toy_params();
  auto revocations = std::make_shared<RevocationList>();
  GdhMediator sem(group, revocations);

  HmacDrbg rng(779);
  bigint::BigInt x_sem = bigint::BigInt::random_unit(rng, group.order());
  const Bytes msg = str_bytes("one shard");
  const ec::Point expected = gdh::hash_message(group, msg).mul(x_sem);
  sem.install_key("alice", std::move(x_sem));

  std::atomic<bool> mismatch{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (!(sem.issue_token("alice", msg) == expected)) {
          mismatch.store(true);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(sem.stats().tokens_issued, 800u);
}

}  // namespace
}  // namespace medcrypt::mediated
