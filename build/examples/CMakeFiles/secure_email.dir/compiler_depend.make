# Empty compiler generated dependencies file for secure_email.
# This may be replaced when dependencies are built.
