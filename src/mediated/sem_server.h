// The SEM (SEcurity Mediator) architecture of Boneh–Ding–Tsudik–Wong [4],
// as deployed by every mediated scheme in this library.
//
// A SEM is an online, *semi-trusted* server that holds the mediator half
// of each user's private key and answers one token request per operation.
// Revocation = flipping a bit: the SEM refuses tokens for revoked
// identities, which instantly removes the user's ability to decrypt or
// sign. The SEM never sees user key halves or partial results, so it
// cannot decrypt or sign alone (for the pairing schemes, not even a
// SEM-corrupting adversary can — the asymmetry with IB-mRSA that §4
// stresses).
//
// MediatorBase provides the shared machinery (key-half registry,
// revocation checks, audit counters, thread safety); each scheme derives
// a mediator that implements its token computation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "common/error.h"

namespace medcrypt::mediated {

/// Thread-safe revocation set, shared by all mediators of one SEM
/// deployment so revoking an identity kills decryption *and* signing.
class RevocationList {
 public:
  /// Marks `identity` revoked. Idempotent. Effective on the next token
  /// request — this is the paper's "instantaneous revocation".
  void revoke(std::string_view identity);

  /// Restores a previously revoked identity (the paper notes a corrupted
  /// SEM can do this — and *only* this — to the pairing schemes).
  void unrevoke(std::string_view identity);

  bool is_revoked(std::string_view identity) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::set<std::string, std::less<>> revoked_;
};

/// Audit counters every mediator maintains.
struct SemStats {
  std::uint64_t tokens_issued = 0;
  std::uint64_t denials = 0;
  std::uint64_t unknown_identities = 0;
};

/// Shared mediator machinery; KeyHalf is the SEM's piece of the user key
/// (a G1 point for mediated IBE, a Z_q scalar for GDH/ElGamal, a Z_φ(n)
/// exponent for IB-mRSA).
template <typename KeyHalf>
class MediatorBase {
 public:
  explicit MediatorBase(std::shared_ptr<RevocationList> revocations)
      : revocations_(std::move(revocations)) {
    if (!revocations_) {
      throw InvalidArgument("MediatorBase: null revocation list");
    }
  }

  /// Wipes every installed SEM key half on teardown (each one is half of
  /// some user's private key — leaking it halves the attacker's work).
  /// KeyHalf types expose wipe() (BigInt, ec::Point); the constraint is
  /// checked at compile time so a new half type cannot silently opt out.
  ~MediatorBase() {
    static_assert(requires(KeyHalf& h) { h.wipe(); },
                  "SEM key-half types must provide wipe()");
    for (auto& entry : keys_) entry.second.wipe();
  }
  MediatorBase(const MediatorBase&) = delete;
  MediatorBase& operator=(const MediatorBase&) = delete;

  /// Installs (or replaces) the SEM key half for `identity`.
  void install_key(std::string identity, KeyHalf half) {
    std::scoped_lock lock(mu_);
    keys_.insert_or_assign(std::move(identity), std::move(half));
  }

  /// True if the identity has an installed key half.
  bool has_key(std::string_view identity) const {
    std::scoped_lock lock(mu_);
    return keys_.find(identity) != keys_.end();
  }

  const std::shared_ptr<RevocationList>& revocations() const {
    return revocations_;
  }

  SemStats stats() const {
    std::scoped_lock lock(mu_);
    return stats_;
  }

 protected:
  /// Fetches the key half after the revocation check; throws
  /// RevokedError for revoked identities (the paper's "return Error")
  /// and InvalidArgument for unknown ones. Updates the audit counters.
  KeyHalf checked_key(std::string_view identity) const {
    std::scoped_lock lock(mu_);
    if (revocations_->is_revoked(identity)) {
      ++stats_.denials;
      throw RevokedError("SEM: identity is revoked: " + std::string(identity));
    }
    const auto it = keys_.find(identity);
    if (it == keys_.end()) {
      ++stats_.unknown_identities;
      throw InvalidArgument("SEM: unknown identity: " + std::string(identity));
    }
    ++stats_.tokens_issued;
    return it->second;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, KeyHalf, std::less<>> keys_;
  std::shared_ptr<RevocationList> revocations_;
  mutable SemStats stats_;
};

}  // namespace medcrypt::mediated
