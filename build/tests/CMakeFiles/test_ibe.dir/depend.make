# Empty dependencies file for test_ibe.
# This may be replaced when dependencies are built.
