// Inline-suppression fixtures: both placement forms.
int wire_header_check(const void* a, const void* b) {
  // The 4-byte magic header is public protocol framing, not a secret.
  // medlint: allow(secret-memcmp)
  return memcmp(a, b, 4);
}

int version_check(const void* a, const void* b) {
  return memcmp(a, b, 2);  // public version bytes  medlint: allow(secret-memcmp)
}
