// Secure corporate e-mail with identity-based encryption and instant
// offboarding — the workload the paper's introduction motivates.
//
// A company runs one PKG (offline after onboarding) and one SEM (online).
// Employees exchange mail encrypted to e-mail addresses; ciphertexts
// cross the "wire" as bytes. When an employee leaves, a single revocation
// call instantly disables their decryption AND their signing capability,
// without re-keying anyone else — contrast with the validity-period
// approach, where the ex-employee keeps reading mail until the period
// ends and the PKG re-keys the whole company every period.
//
// Build & run:  cmake --build build && ./build/examples/secure_email
#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "hash/drbg.h"
#include "mediated/mediated_gdh.h"
#include "mediated/mediated_ibe.h"
#include "pairing/params.h"
#include "revocation/revocation.h"

namespace {

using namespace medcrypt;

// A fixed-size mail body (FullIdent encrypts one block; a real system
// would wrap a symmetric key — see README "hybrid encryption").
Bytes make_body(const std::string& text) {
  Bytes body = str_bytes(text);
  if (body.size() > 32) body.resize(32);
  body.resize(32, ' ');
  return body;
}

std::string body_text(const Bytes& body) {
  std::string s(body.begin(), body.end());
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

}  // namespace

int main() {
  hash::HmacDrbg rng(2026);  // deterministic demo

  // ---------------------------------------------------------------------
  // Company infrastructure.
  // ---------------------------------------------------------------------
  std::cout << "== ACME Corp secure mail ==\n";
  ibe::Pkg pkg(pairing::paper_params(), 32, rng);
  auto revocations = std::make_shared<mediated::RevocationList>();
  mediated::IbeMediator mail_sem(pkg.params(), revocations);
  mediated::GdhMediator sig_sem(pairing::paper_params(), revocations);
  revocation::RevocationAuthority hr(revocations);

  // Onboard three employees. After this loop the PKG could be unplugged.
  const std::vector<std::string> staff = {"alice@acme.com", "bob@acme.com",
                                          "carol@acme.com"};
  std::map<std::string, mediated::MediatedIbeUser> inbox;
  std::map<std::string, mediated::MediatedGdhUser> signer;
  for (const auto& id : staff) {
    inbox.emplace(id, enroll_ibe_user(pkg, mail_sem, id, rng));
    signer.emplace(id, enroll_gdh_user(pairing::paper_params(), sig_sem, id, rng));
    std::cout << "onboarded " << id << "\n";
  }
  std::cout << "(PKG goes offline; SEM stays online)\n\n";

  // ---------------------------------------------------------------------
  // Normal operation: signed, encrypted mail over a simulated LAN.
  // ---------------------------------------------------------------------
  sim::SimClock clock;
  sim::Transport lan(&clock, sim::LatencyModel::lan());

  auto send_mail = [&](const std::string& from, const std::string& to,
                       const std::string& text) {
    // Sender: sign, then encrypt to the recipient's address. Encryption
    // requires NO certificate fetch and no SEM contact.
    const Bytes body = make_body(text);
    const ec::Point signature = signer.at(from).sign(body, sig_sem, &lan);
    const auto ct = ibe::full_encrypt(pkg.params(), to, body, rng);
    const Bytes wire_ct = ct.to_bytes();

    // Receiver: decrypt (one SEM round trip), verify.
    const auto received = ibe::FullCiphertext::from_bytes(pkg.params(), wire_ct);
    const Bytes plain = inbox.at(to).decrypt(received, mail_sem, &lan);
    const bool sig_ok = gdh::verify(pairing::paper_params(),
                                    signer.at(from).public_key(), plain,
                                    signature);
    std::cout << from << " -> " << to << ": \"" << body_text(plain) << "\""
              << (sig_ok ? "  [signature OK]" : "  [SIGNATURE BAD]") << "\n";
  };

  send_mail("alice@acme.com", "bob@acme.com", "ship the release friday");
  send_mail("bob@acme.com", "alice@acme.com", "ack. tagging rc1 now");
  send_mail("carol@acme.com", "alice@acme.com", "payroll runs monday");

  std::cout << "\nwire totals so far: " << lan.stats().total_bytes()
            << " bytes in " << lan.stats().total_messages()
            << " SEM messages; virtual elapsed "
            << std::fixed << std::setprecision(2)
            << static_cast<double>(clock.now_ns()) / 1e6 << " ms\n\n";

  // ---------------------------------------------------------------------
  // Offboarding: Bob leaves. One call, effective immediately.
  // ---------------------------------------------------------------------
  std::cout << "== HR offboards bob@acme.com ==\n";
  hr.revoke("bob@acme.com");

  // Mail already in Bob's mailbox cannot be opened anymore...
  const auto ct_for_bob = ibe::full_encrypt(pkg.params(), "bob@acme.com",
                                            make_body("old unread mail"), rng);
  try {
    (void)inbox.at("bob@acme.com").decrypt(ct_for_bob, mail_sem);
    std::cout << "ERROR: bob decrypted after revocation!\n";
    return 1;
  } catch (const RevokedError&) {
    std::cout << "bob's decryption: DENIED (instant, no re-keying)\n";
  }
  // ...and he cannot sign as ACME either.
  try {
    (void)signer.at("bob@acme.com").sign(make_body("I still work here"), sig_sem);
    std::cout << "ERROR: bob signed after revocation!\n";
    return 1;
  } catch (const RevokedError&) {
    std::cout << "bob's signing:    DENIED\n";
  }

  // Everyone else is untouched — no new keys, no new certificates.
  send_mail("alice@acme.com", "carol@acme.com", "bob is gone; rotate nothing");

  // ---------------------------------------------------------------------
  // Audit.
  // ---------------------------------------------------------------------
  const auto mail_stats = mail_sem.stats();
  const auto sig_stats = sig_sem.stats();
  std::cout << "\nSEM audit:\n"
            << "  mail tokens issued: " << mail_stats.tokens_issued
            << ", denials: " << mail_stats.denials << "\n"
            << "  sign tokens issued: " << sig_stats.tokens_issued
            << ", denials: " << sig_stats.denials << "\n"
            << "  revoked identities: " << revocations->size() << "\n";
  return 0;
}
