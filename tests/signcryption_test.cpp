// Tests for mediated signcryption (§7 open problem): round trip, both
// revocation directions, binding properties, non-repudiation.
#include <gtest/gtest.h>

#include "common/error.h"
#include "hash/drbg.h"
#include "mediated/signcryption.h"
#include "pairing/params.h"

namespace medcrypt::mediated {
namespace {

using hash::HmacDrbg;

class SigncryptionTest : public ::testing::Test {
 protected:
  SigncryptionTest()
      : rng_(200),
        pkg_(make_signcryption_pkg(pairing::toy_params(),
                                   pairing::toy_params(), 32, rng_)),
        revocations_(std::make_shared<RevocationList>()),
        ibe_sem_(pkg_.params(), revocations_),
        sig_sem_(pairing::toy_params(), revocations_),
        params_(make_signcryption_params(pkg_.params(), pairing::toy_params(),
                                         32)),
        alice_(params_,
               enroll_gdh_user(pairing::toy_params(), sig_sem_, "alice", rng_)),
        bob_(params_, enroll_ibe_user(pkg_, ibe_sem_, "bob", rng_)) {}

  Bytes random_message() {
    Bytes m(32);
    rng_.fill(m);
    return m;
  }

  HmacDrbg rng_;
  ibe::Pkg pkg_;
  std::shared_ptr<RevocationList> revocations_;
  IbeMediator ibe_sem_;
  GdhMediator sig_sem_;
  SigncryptionParams params_;
  Signcrypter alice_;
  Unsigncrypter bob_;
};

TEST_F(SigncryptionTest, RoundTrip) {
  const Bytes m = random_message();
  const Signcrypted sc = alice_.signcrypt(m, "bob", sig_sem_, rng_);
  EXPECT_EQ(sc.sender, "alice");
  EXPECT_EQ(bob_.unsigncrypt(sc, alice_.verification_key(), ibe_sem_), m);
}

TEST_F(SigncryptionTest, SenderRevocationBlocksSigncryption) {
  revocations_->revoke("alice");
  EXPECT_THROW(alice_.signcrypt(random_message(), "bob", sig_sem_, rng_),
               RevokedError);
}

TEST_F(SigncryptionTest, ReceiverRevocationBlocksUnsigncryption) {
  const Signcrypted sc =
      alice_.signcrypt(random_message(), "bob", sig_sem_, rng_);
  revocations_->revoke("bob");
  EXPECT_THROW(bob_.unsigncrypt(sc, alice_.verification_key(), ibe_sem_),
               RevokedError);
}

TEST_F(SigncryptionTest, RevocationsAreIndependent) {
  // Revoking the receiver does not stop the sender from producing
  // messages (they just pile up unopenable), and vice versa.
  revocations_->revoke("bob");
  EXPECT_NO_THROW(alice_.signcrypt(random_message(), "bob", sig_sem_, rng_));
}

TEST_F(SigncryptionTest, WrongSenderKeyRejected) {
  const Bytes m = random_message();
  const Signcrypted sc = alice_.signcrypt(m, "bob", sig_sem_, rng_);
  // Verify against a different key: signature check fails.
  auto mallory = enroll_gdh_user(pairing::toy_params(), sig_sem_, "mallory", rng_);
  EXPECT_THROW(bob_.unsigncrypt(sc, mallory.public_key(), ibe_sem_),
               ProofError);
}

TEST_F(SigncryptionTest, SenderSpoofingDetected) {
  // Mallory re-labels Alice's signcryption as her own: the embedded
  // signature no longer verifies under Mallory's key.
  const Signcrypted sc =
      alice_.signcrypt(random_message(), "bob", sig_sem_, rng_);
  auto mallory = enroll_gdh_user(pairing::toy_params(), sig_sem_, "mallory", rng_);
  Signcrypted forged = sc;
  forged.sender = "mallory";
  EXPECT_THROW(bob_.unsigncrypt(forged, mallory.public_key(), ibe_sem_),
               ProofError);
}

TEST_F(SigncryptionTest, RecipientBindingPreventsReencryption) {
  // A signature extracted from a message to Bob is NOT valid for the
  // same plaintext sent to Carol: the statement binds the recipient.
  const Bytes m = random_message();
  const Signcrypted sc = alice_.signcrypt(m, "bob", sig_sem_, rng_);
  const Bytes opened = bob_.unsigncrypt(sc, alice_.verification_key(), ibe_sem_);
  EXPECT_EQ(opened, m);

  // Recover sigma (Bob can: he opened the payload).
  const auto d_bob = pkg_.extract("bob");
  const Bytes payload = ibe::full_decrypt(pkg_.params(), d_bob, sc.ct);
  const auto sigma = params_.sig_group.curve->decompress(
      BytesView(payload.data() + 32, payload.size() - 32));

  EXPECT_TRUE(verify_opened(params_, m, sigma, "alice", "bob",
                            alice_.verification_key()));
  EXPECT_FALSE(verify_opened(params_, m, sigma, "alice", "carol",
                             alice_.verification_key()));
}

TEST_F(SigncryptionTest, TamperedCiphertextRejected) {
  Signcrypted sc = alice_.signcrypt(random_message(), "bob", sig_sem_, rng_);
  sc.ct.w[0] ^= 1;
  EXPECT_THROW(bob_.unsigncrypt(sc, alice_.verification_key(), ibe_sem_),
               DecryptionError);
}

TEST_F(SigncryptionTest, NonRepudiation) {
  // Bob exhibits (M, sigma) to a third party who verifies without any
  // SEM or secret material.
  const Bytes m = random_message();
  const Signcrypted sc = alice_.signcrypt(m, "bob", sig_sem_, rng_);
  const auto d_bob = pkg_.extract("bob");
  const Bytes payload = ibe::full_decrypt(pkg_.params(), d_bob, sc.ct);
  const auto sigma = params_.sig_group.curve->decompress(
      BytesView(payload.data() + 32, payload.size() - 32));
  EXPECT_TRUE(verify_opened(params_, m, sigma, "alice", "bob",
                            alice_.verification_key()));
}

TEST_F(SigncryptionTest, ParamsValidation) {
  // Mismatched PKG block size is rejected.
  HmacDrbg rng(201);
  ibe::Pkg wrong(pairing::toy_params(), 32, rng);  // block = 32, not 32+65
  EXPECT_THROW(
      make_signcryption_params(wrong.params(), pairing::toy_params(), 32),
      InvalidArgument);
  EXPECT_THROW(alice_.signcrypt(Bytes(5, 0), "bob", sig_sem_, rng),
               InvalidArgument);
}

TEST_F(SigncryptionTest, BindingEncodingIsInjective) {
  // Length framing: ("ab", "c") vs ("a", "bc") must differ.
  EXPECT_NE(signcryption_binding(str_bytes("ab"), "c", "d"),
            signcryption_binding(str_bytes("a"), "bc", "d"));
  EXPECT_NE(signcryption_binding(str_bytes("a"), "bc", "d"),
            signcryption_binding(str_bytes("a"), "b", "cd"));
}

}  // namespace
}  // namespace medcrypt::mediated
