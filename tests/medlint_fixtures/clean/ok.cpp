// medlint test fixture: hygienic code that must produce zero findings.
#include <cstdint>
#include <span>

struct PrivateKey {
  ~PrivateKey() { wipe(); }
  void wipe() {}
};

// ct_equal-style comparison: no banned primitive involved.
bool ct_equal_demo(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

// Public metadata comparisons are fine.
bool fits(std::size_t key_len, std::size_t max_len) {
  return key_len == max_len;
}
