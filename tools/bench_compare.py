#!/usr/bin/env python3
"""Compare BENCH_*.json reports against committed baselines.

The bench binaries (see bench/bench_util.h JsonReport) write one
BENCH_<tag>.json per run with entries of two shapes:

    {"name": ..., "median_ns": <float>, "iterations": N}          # timing
    {"name": ..., "value": <float>, "unit": "tokens_per_s", ...}   # rate/size

Direction is inferred from the unit: nanoseconds regress when they go
UP, throughput units regress when they go DOWN, and size-like units
(bytes) are compared but only reported, never failed — payload sizes
are deterministic, so any change is a diff to read, not a regression
to threshold.

Usage:
    tools/bench_compare.py [--baseline-dir bench/baselines]
                           [--current-dir .] [--threshold 25] [--strict]
    tools/bench_compare.py --update        # refresh baselines from current

Exit codes: 0 ok (or regressions found but not --strict), 1 regression
beyond threshold with --strict, 2 usage/IO error.

The default threshold is deliberately loose (25%): CI machines are
noisy and these benches run with MEDCRYPT_BENCH_ITERS=1 there. For
local perf work, run with --threshold 5 and meaningful iteration
counts.
"""

import argparse
import glob
import json
import os
import shutil
import sys

HIGHER_IS_BETTER = {"tokens_per_s", "ops_per_s", "msgs_per_s"}
REPORT_ONLY = {"bytes", "count"}


def load_report(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for entry in data.get("results", []):
        if "median_ns" in entry:
            out[entry["name"]] = (float(entry["median_ns"]), "ns")
        else:
            out[entry["name"]] = (float(entry["value"]), entry.get("unit", ""))
    return data.get("bench", os.path.basename(path)), out


def compare_one(tag, base, cur, threshold_pct, fail_threshold_pct=None):
    """Returns (lines, regression_count, compared_count, failures)."""
    lines = []
    regressions = 0
    compared = 0
    failures = []
    for name in sorted(base):
        if name not in cur:
            lines.append(f"  {name:<44} MISSING from current run")
            continue
        bval, bunit = base[name]
        cval, cunit = cur[name]
        if bunit != cunit:
            lines.append(
                f"  {name:<44} unit changed {bunit} -> {cunit}; skipped")
            continue
        if bval == 0:
            lines.append(f"  {name:<44} baseline is 0; skipped")
            continue
        delta_pct = (cval - bval) / bval * 100.0
        if bunit in REPORT_ONLY:
            marker = "=" if cval == bval else "!"
            lines.append(f"  {name:<44} {bval:>12.1f} -> {cval:>12.1f} "
                         f"{bunit:<12} ({delta_pct:+6.1f}%) {marker}")
            continue
        compared += 1
        # Normalize so positive regress_pct always means "got worse".
        regress_pct = -delta_pct if bunit in HIGHER_IS_BETTER else delta_pct
        bad = regress_pct > threshold_pct
        hard = (fail_threshold_pct is not None
                and regress_pct > fail_threshold_pct)
        marker = "FAIL" if hard else ("REGRESSION" if bad else "ok")
        if bad:
            regressions += 1
        if hard:
            failures.append((name, regress_pct))
        lines.append(f"  {name:<44} {bval:>12.1f} -> {cval:>12.1f} "
                     f"{bunit:<12} ({delta_pct:+6.1f}%) {marker}")
    for name in sorted(set(cur) - set(base)):
        lines.append(f"  {name:<44} new (no baseline)")
    return lines, regressions, compared, failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--current-dir", default=".")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="regression threshold in percent (default 25)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any metric regresses past threshold")
    ap.add_argument("--fail-threshold", type=float, default=None,
                    metavar="PCT",
                    help="hard gate: exit 1 when any metric regresses more "
                         "than PCT percent, independent of --strict. CI's "
                         "bench-smoke leg uses a deliberately generous value "
                         "since it runs with MEDCRYPT_BENCH_ITERS=1")
    ap.add_argument("--update", action="store_true",
                    help="copy current BENCH_*.json into the baseline dir")
    args = ap.parse_args()

    current = sorted(glob.glob(os.path.join(args.current_dir, "BENCH_*.json")))
    if args.update:
        if not current:
            print("bench_compare: no BENCH_*.json in", args.current_dir,
                  file=sys.stderr)
            return 2
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in current:
            shutil.copy(path, os.path.join(args.baseline_dir,
                                           os.path.basename(path)))
            print("baselined", os.path.basename(path))
        return 0

    baselines = sorted(glob.glob(os.path.join(args.baseline_dir,
                                              "BENCH_*.json")))
    if not baselines:
        print("bench_compare: no baselines in", args.baseline_dir,
              file=sys.stderr)
        return 2

    total_regressions = 0
    total_compared = 0
    total_failures = []
    for bpath in baselines:
        fname = os.path.basename(bpath)
        cpath = os.path.join(args.current_dir, fname)
        if not os.path.exists(cpath):
            print(f"{fname}: not produced by this run; skipped")
            continue
        try:
            tag, base = load_report(bpath)
            _, cur = load_report(cpath)
        except (json.JSONDecodeError, KeyError) as e:
            print(f"bench_compare: malformed report {fname}: {e}",
                  file=sys.stderr)
            return 2
        lines, regressions, compared, failures = compare_one(
            tag, base, cur, args.threshold, args.fail_threshold)
        print(f"{tag} (threshold {args.threshold:.0f}%):")
        print("\n".join(lines) if lines else "  (empty)")
        total_regressions += regressions
        total_compared += compared
        total_failures += failures

    print(f"\n{total_compared} metric(s) compared, "
          f"{total_regressions} regression(s)")
    if total_failures:
        print(f"bench_compare: FAIL: {len(total_failures)} metric(s) past "
              f"the hard gate (--fail-threshold "
              f"{args.fail_threshold:.0f}%):", file=sys.stderr)
        for name, pct in total_failures:
            print(f"  {name}: {pct:+.1f}%", file=sys.stderr)
        return 1
    if total_regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
