// Montgomery-form modular arithmetic for odd moduli.
//
// A Montgomery context precomputes R = 2^(64k), R^2 mod N and
// -N^{-1} mod 2^64 for a fixed odd modulus N of k limbs, and offers CIOS
// multiplication and windowed exponentiation. The prime-field layer keeps
// its elements permanently in Montgomery form and reuses one shared
// context per field, which is what makes the 512-bit Tate pairing usable.
//
// Two API levels coexist:
//  - BigInt-valued (mul/pow/pow_mont): convenient, allocates per call;
//    used by setup code and BigInt::pow_mod (RSA).
//  - Limb-level (mul_limbs/add_limbs/...): operates on fixed k-limb
//    little-endian arrays owned by the caller and never allocates, which
//    is what keeps the field/curve/pairing hot path off the heap. All
//    limb-level routines tolerate `out` aliasing an input.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/kernels/kernels.h"

namespace medcrypt::bigint {

/// Montgomery multiplication/exponentiation context for an odd modulus.
class Montgomery {
 public:
  /// Builds the context. Throws InvalidArgument unless n is odd and > 1.
  explicit Montgomery(BigInt n);

  const BigInt& modulus() const { return n_; }

  /// Number of 64-bit limbs of the modulus.
  std::size_t limbs() const { return k_; }

  /// Converts a (already reduced mod n) into Montgomery form: a*R mod n.
  BigInt to_mont(const BigInt& a) const;

  /// Converts a Montgomery-form value back to the ordinary residue.
  BigInt from_mont(const BigInt& a) const;

  /// Montgomery product: a*b*R^{-1} mod n for Montgomery-form a, b.
  BigInt mul(const BigInt& a, const BigInt& b) const;

  /// The Montgomery form of 1 (i.e. R mod n).
  const BigInt& one() const { return one_; }

  /// base^e mod n for an *ordinary* (non-Montgomery) base; returns an
  /// ordinary residue. Requires 0 <= base < n and e >= 0.
  BigInt pow(const BigInt& base, const BigInt& e) const;

  /// base^e where base is in Montgomery form; result in Montgomery form.
  BigInt pow_mont(const BigInt& base_mont, const BigInt& e) const;

  // --- limb-level API (allocation-free) -----------------------------------

  /// CIOS Montgomery product a*b*R^{-1} mod n on k-limb little-endian
  /// arrays. `out` may alias `a` and/or `b`. Allocation-free for moduli
  /// up to 4096 bits (a stack scratch; larger moduli fall back to heap).
  void mul_limbs(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out) const;

  /// (a + b) mod n on reduced k-limb operands; `out` may alias.
  void add_limbs(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out) const;

  /// (a - b) mod n on reduced k-limb operands; `out` may alias.
  void sub_limbs(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out) const;

  /// (-a) mod n on a reduced k-limb operand; `out` may alias `a`.
  void neg_limbs(const std::uint64_t* a, std::uint64_t* out) const;

  /// Zero-pads the magnitude of `a` to exactly k limbs. Requires
  /// 0 <= a < R (i.e. at most k limbs).
  void pad_limbs(const BigInt& a, std::uint64_t* out) const;

  /// BigInt from a k-limb little-endian array.
  BigInt bigint_from_limbs(const std::uint64_t* a) const;

  /// Montgomery form a*R mod n of an ordinary residue 0 <= a < n,
  /// written into k limbs (`out` must hold k limbs).
  void to_mont_limbs(const BigInt& a, std::uint64_t* out) const;

  /// R mod n zero-padded to k limbs (the Montgomery form of 1).
  const std::uint64_t* one_limbs() const { return one_padded_.data(); }

  // --- lazy-reduction API (field/lazy.h WideAcc) --------------------------

  /// Plain k x k -> 2k-limb product of Montgomery-form operands, no
  /// reduction. `out` (2k limbs) must not alias `a`/`b`. With inputs
  /// a^, b^ < n the product is < n^2 < R*n — one WideAcc budget unit.
  void mul_wide_limbs(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* out) const;

  /// Montgomery reduction of a (2k+2)-limb accumulator T < 8*R*n into a
  /// fully reduced k-limb result T*R^{-1} mod n. `t` is clobbered.
  void redc_limbs(std::uint64_t* t, std::uint64_t* out) const;

  /// -n^{-1} mod 2^64 (kernel/test plumbing).
  std::uint64_t n0inv() const { return n0inv_; }

  /// The modulus as a k-limb little-endian array.
  const std::uint64_t* modulus_limbs() const { return n_.limbs().data(); }

  /// The kernel table this context dispatches through (the process-wide
  /// active() table, cached at construction).
  const kernels::Table& kernel() const { return *kt_; }

 private:
  // Pads a BigInt's limbs to exactly k entries.
  std::vector<std::uint64_t> padded(const BigInt& a) const;

  BigInt n_;
  std::size_t k_ = 0;
  std::uint64_t n0inv_ = 0;  // -n^{-1} mod 2^64
  const kernels::Table* kt_ = nullptr;  // dispatched limb kernels
  BigInt r2_;                // R^2 mod n
  BigInt one_;               // R mod n
  std::vector<std::uint64_t> one_padded_;  // R mod n, k limbs
  std::vector<std::uint64_t> r2_padded_;   // R^2 mod n, k limbs
};

}  // namespace medcrypt::bigint
