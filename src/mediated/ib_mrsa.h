// IB-mRSA — identity-based mediated RSA (paper §2, after [3], [9]).
// The baseline the pairing-based schemes are compared against.
//
//   Setup: the PKG generates a COMMON k-bit Blum modulus n = pq from safe
//     primes p = 2p'+1, q = 2q'+1 and publishes (n, H).
//   Keygen for identity ID:
//     e_ID = 0^s || H(ID) || 1      (s = k - l - 1; trailing 1 makes it
//                                    odd, so coprime to φ(n) w.h.p.)
//     d_ID = e_ID^{-1} mod φ(n);  d_user random, d_sem = d_ID - d_user.
//   Encrypt: RSA-OAEP under (n, e_ID) — senders derive e_ID themselves.
//   Decrypt: SEM returns m_sem = c^{d_sem}; user computes m_user =
//     c^{d_user}; m = OAEP-decode(m_sem · m_user mod n).
//   Sign: the mirror protocol on the FDH padding of the message.
//
// Security notes carried into tests:
//   - no single user knows a full (e, d) pair, so the common modulus is
//     safe *unless* a user corrupts the SEM — then d = d_user + d_sem
//     factors n (rsa::factor_from_exponents) and EVERY identity breaks.
//     This is the paper's central criticism of IB-mRSA (§2, §4).
//   - the SEM must therefore be a fully trusted entity here, unlike the
//     mediated pairing schemes.
#pragma once

#include <string_view>

#include "mediated/sem_server.h"
#include "rsa/oaep.h"
#include "rsa/rsa.h"
#include "sim/transport.h"

namespace medcrypt::mediated {

using bigint::BigInt;

/// IB-mRSA public parameters: the common modulus and the hash width l.
struct IbMRsaParams {
  BigInt modulus;
  std::size_t modulus_bits = 0;
  std::size_t hash_bits = 0;  // l

  std::size_t byte_size() const { return (modulus_bits + 7) / 8; }
};

/// Derives the identity public exponent e_ID = 0^s || H(ID) || 1.
BigInt identity_exponent(const IbMRsaParams& params, std::string_view identity);

/// Sender-side encryption: RSA-OAEP under (n, e_ID). Message length is
/// bounded by rsa::oaep_max_message(byte_size()).
Bytes ib_mrsa_encrypt(const IbMRsaParams& params, std::string_view identity,
                      BytesView message, RandomSource& rng);

/// FDH value of a message in Z_n (for the signature protocol).
BigInt ib_mrsa_fdh(const IbMRsaParams& params, BytesView message);

/// Verifier-side signature check: σ^{e_ID} = FDH(M).
bool ib_mrsa_verify(const IbMRsaParams& params, std::string_view identity,
                    BytesView message, const BigInt& signature);

/// The IB-mRSA PKG/CA: owns the factorization of the common modulus.
class IbMRsaSystem {
 public:
  struct Options {
    std::size_t modulus_bits = 1024;
    std::size_t hash_bits = 160;
    /// Safe primes are what the paper specifies; tests may disable them
    /// to keep reduced-parameter keygen fast.
    bool safe_primes = true;
  };

  IbMRsaSystem(const Options& options, RandomSource& rng);

  const IbMRsaParams& params() const { return params_; }

  /// User + SEM exponent halves for one identity. Wiped on destruction
  /// (d_user + d_sem with the public e_ID factors the common modulus).
  struct UserKeys {
    UserKeys() = default;
    UserKeys(BigInt d_user_, BigInt d_sem_)
        : d_user(std::move(d_user_)), d_sem(std::move(d_sem_)) {}
    UserKeys(const UserKeys&) = default;
    UserKeys(UserKeys&&) = default;
    UserKeys& operator=(const UserKeys&) = default;
    UserKeys& operator=(UserKeys&&) = default;
    ~UserKeys() {
      d_user.wipe();
      d_sem.wipe();
    }

    BigInt d_user;
    BigInt d_sem;
  };

  /// Keygen. Throws Error in the negligible event that e_ID divides φ(n).
  UserKeys issue(std::string_view identity, RandomSource& rng) const;

  /// The full private exponent (tests only; a deployment never extracts
  /// this).
  BigInt full_exponent(std::string_view identity) const;

  /// Wipes φ(n) — with the public modulus it is equivalent to the
  /// factorization of n, i.e. every user's key at once.
  ~IbMRsaSystem() { phi_.wipe(); }
  IbMRsaSystem(const IbMRsaSystem&) = default;
  IbMRsaSystem(IbMRsaSystem&&) = default;
  IbMRsaSystem& operator=(const IbMRsaSystem&) = default;
  IbMRsaSystem& operator=(IbMRsaSystem&&) = default;

 private:
  IbMRsaParams params_;
  BigInt phi_;
};

/// SEM-side endpoint: half-exponentiations with revocation checks.
class MRsaMediator : public MediatorBase<BigInt> {
 public:
  MRsaMediator(IbMRsaParams params,
               std::shared_ptr<RevocationList> revocations);

  const IbMRsaParams& params() const { return params_; }

  /// Issues the half-result c^{d_sem} mod n for a ciphertext or FDH value.
  /// Throws RevokedError if `identity` is revoked.
  BigInt issue_token(std::string_view identity, const BigInt& c) const;

 private:
  IbMRsaParams params_;
};

/// User-side endpoint holding d_user.
class IbMRsaUser {
 public:
  IbMRsaUser(IbMRsaParams params, std::string identity, BigInt user_key);

  /// d_ID,user is the half the §4 security argument keeps from the SEM;
  /// scrub it when the holder dies.
  ~IbMRsaUser() { user_key_.wipe(); }
  IbMRsaUser(const IbMRsaUser&) = default;
  IbMRsaUser(IbMRsaUser&&) = default;
  IbMRsaUser& operator=(const IbMRsaUser&) = default;
  IbMRsaUser& operator=(IbMRsaUser&&) = default;

  const std::string& identity() const { return identity_; }

  /// Mediated decryption (OAEP-decoded). Throws RevokedError or
  /// DecryptionError.
  Bytes decrypt(const Bytes& ciphertext, const MRsaMediator& sem,
                sim::Transport* transport = nullptr) const;

  /// Mediated FDH signing; the user verifies before releasing.
  BigInt sign(BytesView message, const MRsaMediator& sem,
              sim::Transport* transport = nullptr) const;

  /// The user's exponent half — exposed to model the §2 collusion attack
  /// in tests.
  const BigInt& user_key() const { return user_key_; }

 private:
  IbMRsaParams params_;
  std::string identity_;
  BigInt user_key_;
};

/// Enrollment helper mirroring the pairing schemes' shape.
IbMRsaUser enroll_mrsa_user(const IbMRsaSystem& system, MRsaMediator& sem,
                            std::string identity, RandomSource& rng);

}  // namespace medcrypt::mediated
