// Tests for elliptic-curve group law, scalar multiplication, compression
// and hash-to-subgroup.
#include <gtest/gtest.h>

#include "common/error.h"
#include "ec/curve.h"
#include "ec/hash_to_point.h"
#include "ec/jacobian.h"
#include "ec/point.h"
#include "hash/drbg.h"
#include "pairing/params.h"

namespace medcrypt::ec {
namespace {

using bigint::BigInt;
using field::PrimeField;
using hash::HmacDrbg;

// Tiny curve with known group structure: y^2 = x^3 + x over F_103
// (103 ≡ 3 mod 4, supersingular, #E = 104 = 8 * 13 → q = 13, h = 8).
std::shared_ptr<const Curve> tiny_curve() {
  auto f = PrimeField::make(BigInt(103));
  return Curve::make(f, f->one(), f->zero(), BigInt(13), BigInt(8));
}

// Finds any affine point on the tiny curve.
Point some_point(const std::shared_ptr<const Curve>& c) {
  for (std::uint64_t xv = 1;; ++xv) {
    const auto x = c->field()->from_u64(xv);
    const auto rhs = c->rhs(x);
    if (rhs.is_square() && !rhs.is_zero()) return c->point(x, rhs.sqrt());
  }
}

TEST(Curve, RejectsSingular) {
  auto f = PrimeField::make(BigInt(103));
  EXPECT_THROW(Curve::make(f, f->zero(), f->zero(), BigInt(13), BigInt(8)),
               InvalidArgument);
}

TEST(Curve, RejectsOffCurvePoint) {
  auto c = tiny_curve();
  auto f = c->field();
  EXPECT_THROW(c->point(f->from_u64(1), f->from_u64(1)), InvalidArgument);
}

TEST(Point, GroupLawBasics) {
  auto c = tiny_curve();
  const Point p = some_point(c);
  const Point inf = c->infinity();

  EXPECT_EQ(p + inf, p);
  EXPECT_EQ(inf + p, p);
  EXPECT_TRUE((p - p).is_infinity());
  EXPECT_EQ(-inf, inf);
  EXPECT_EQ(p.dbl(), p + p);
}

TEST(Point, Associativity) {
  auto c = tiny_curve();
  const Point p = some_point(c);
  const Point q = p.dbl();
  const Point r = q.dbl() + p;
  EXPECT_EQ((p + q) + r, p + (q + r));
}

TEST(Point, Commutativity) {
  auto c = tiny_curve();
  const Point p = some_point(c);
  const Point q = p.dbl() + p;
  EXPECT_EQ(p + q, q + p);
}

TEST(Point, FullGroupOrder) {
  // #E(F_103) = 104 for the supersingular curve: 104*P = O for every P.
  auto c = tiny_curve();
  for (std::uint64_t xv = 0; xv < 103; ++xv) {
    const auto x = c->field()->from_u64(xv);
    const auto rhs = c->rhs(x);
    if (!rhs.is_square()) continue;
    const Point p = c->point(x, rhs.sqrt());
    EXPECT_TRUE(p.mul(BigInt(104)).is_infinity()) << "x = " << xv;
  }
}

TEST(Point, ScalarMulMatchesRepeatedAddition) {
  auto c = tiny_curve();
  const Point p = some_point(c);
  Point acc = c->infinity();
  for (int k = 0; k <= 30; ++k) {
    EXPECT_EQ(p.mul(BigInt(k)), acc) << "k = " << k;
    acc += p;
  }
}

TEST(Point, ScalarMulDistributes) {
  auto c = tiny_curve();
  const Point p = some_point(c);
  EXPECT_EQ(p.mul(BigInt(7)) + p.mul(BigInt(9)), p.mul(BigInt(16)));
  EXPECT_EQ(p.mul(BigInt(5)).mul(BigInt(3)), p.mul(BigInt(15)));
}

TEST(Point, NegativeScalar) {
  auto c = tiny_curve();
  const Point p = some_point(c);
  EXPECT_EQ(p.mul(BigInt(-3)), -(p.mul(BigInt(3))));
  EXPECT_TRUE(p.mul(BigInt(0)).is_infinity());
}

TEST(Point, SubgroupMembership) {
  auto c = tiny_curve();
  const Point p = some_point(c);
  const Point g = p.mul(c->cofactor());
  if (!g.is_infinity()) {
    EXPECT_TRUE(g.in_subgroup());
    EXPECT_TRUE(g.mul(c->order()).is_infinity());
  }
}

TEST(Point, CompressionRoundTrip) {
  auto c = tiny_curve();
  const Point p = some_point(c);
  for (int k = 0; k < 14; ++k) {
    const Point v = p.mul(BigInt(k));
    const Bytes b = v.to_bytes();
    EXPECT_EQ(b.size(), c->compressed_size());
    EXPECT_EQ(c->decompress(b), v) << "k = " << k;
  }
}

TEST(Point, DecompressRejectsGarbage) {
  auto c = tiny_curve();
  EXPECT_THROW(c->decompress(Bytes{0x05, 0x01}), InvalidArgument);
  EXPECT_THROW(c->decompress(Bytes{0x02}), InvalidArgument);
  // x with non-square RHS: x=0 gives rhs=0 (square); try to find non-square x.
  for (std::uint64_t xv = 0; xv < 103; ++xv) {
    const auto x = c->field()->from_u64(xv);
    if (!c->rhs(x).is_square()) {
      Bytes enc{0x02};
      const Bytes xb = x.to_bytes();
      enc.insert(enc.end(), xb.begin(), xb.end());
      EXPECT_THROW(c->decompress(enc), InvalidArgument);
      break;
    }
  }
}

TEST(Point, MixedCurveThrows) {
  auto c1 = tiny_curve();
  auto c2 = tiny_curve();  // distinct context object
  const Point p1 = some_point(c1);
  const Point p2 = some_point(c2);
  EXPECT_THROW(p1 + p2, InvalidArgument);
}

TEST(HashToPoint, LandsInSubgroup) {
  const auto& params = pairing::toy_params();
  for (const char* id : {"alice@example.com", "bob@example.com", "x", ""}) {
    const Point p = hash_to_subgroup(params.curve, "H1", str_bytes(id));
    EXPECT_FALSE(p.is_infinity());
    EXPECT_TRUE(p.in_subgroup());
  }
}

TEST(HashToPoint, DeterministicAndInjectiveish) {
  const auto& params = pairing::toy_params();
  const Point a1 = hash_to_subgroup(params.curve, "H1", str_bytes("alice"));
  const Point a2 = hash_to_subgroup(params.curve, "H1", str_bytes("alice"));
  const Point b = hash_to_subgroup(params.curve, "H1", str_bytes("bob"));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(HashToPoint, DomainSeparation) {
  const auto& params = pairing::toy_params();
  const Point a = hash_to_subgroup(params.curve, "H1", str_bytes("alice"));
  const Point b = hash_to_subgroup(params.curve, "GDH", str_bytes("alice"));
  EXPECT_NE(a, b);
}

TEST(Jacobian, MulMatchesAffineReferenceTinyCurve) {
  // Exhaustive cross-check on the order-13 subgroup (hits the doubling
  // and cancellation corner cases of the Jacobian ladder).
  auto c = tiny_curve();
  Point p;
  for (std::uint64_t xv = 1; xv < 103; ++xv) {
    const auto x = c->field()->from_u64(xv);
    const auto rhs = c->rhs(x);
    if (!rhs.is_square() || rhs.is_zero()) continue;
    p = c->point(x, rhs.sqrt()).mul_affine(c->cofactor());
    if (!p.is_infinity()) break;
  }
  ASSERT_FALSE(p.is_infinity()) << "no order-13 point found";
  for (int k = -15; k <= 30; ++k) {
    EXPECT_EQ(p.mul(BigInt(k)), p.mul_affine(BigInt(k))) << "k = " << k;
  }
}

TEST(Jacobian, MulMatchesAffineReferenceBigCurve) {
  const auto& params = pairing::toy_params();
  HmacDrbg rng(36);
  for (int i = 0; i < 10; ++i) {
    const BigInt k = BigInt::random_below(rng, params.order());
    EXPECT_EQ(params.generator.mul(k), params.generator.mul_affine(k));
  }
}

TEST(Jacobian, RoundTripThroughCoordinates) {
  const auto& params = pairing::toy_params();
  const Point p = params.generator;
  const JacPoint j = jac_from_affine(p);
  EXPECT_EQ(jac_to_affine(params.curve, j), p);
  EXPECT_TRUE(jac_to_affine(params.curve, JacPoint{}).is_infinity());
}

TEST(Jacobian, DblAddConsistency) {
  const auto& params = pairing::toy_params();
  const Point p = params.generator;
  JacPoint acc = jac_from_affine(p);
  acc = jac_dbl(*params.curve, acc);          // 2P
  acc = jac_add_mixed(*params.curve, acc, p); // 3P
  EXPECT_EQ(jac_to_affine(params.curve, acc), p.mul_affine(BigInt(3)));
}

TEST(Jacobian, AddInverseYieldsInfinity) {
  const auto& params = pairing::toy_params();
  const Point p = params.generator;
  JacPoint t = jac_from_affine(p);
  AddTrace trace;
  const JacPoint sum = jac_add_mixed(*params.curve, t, -p, &trace);
  EXPECT_TRUE(sum.inf);
  EXPECT_TRUE(trace.vertical);
}

TEST(NamedParams, Toy64Consistency) {
  const auto& params = pairing::named_params("toy64");
  const BigInt& p = params.curve->field()->modulus();
  const BigInt& q = params.order();
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_EQ(q.bit_length(), 64u);
  EXPECT_EQ((p % BigInt(4)).to_dec(), "3");
  EXPECT_EQ((p + BigInt(1)) % q, BigInt(0));
  EXPECT_FALSE(params.generator.is_infinity());
  EXPECT_TRUE(params.generator.in_subgroup());
}

TEST(NamedParams, UnknownNameThrows) {
  EXPECT_THROW(pairing::named_params("nope"), InvalidArgument);
}

TEST(NamedParams, CachedInstanceIsStable) {
  const auto& a = pairing::named_params("toy64");
  const auto& b = pairing::named_params("toy64");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.generator, b.generator);
}

}  // namespace
}  // namespace medcrypt::ec
