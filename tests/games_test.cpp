// Tests for the security-game harnesses (Definitions 2 & 3) and the
// operational Theorem 4.1 reduction.
#include <gtest/gtest.h>

#include "games/ind_id_cca.h"
#include "games/ind_id_tcpa.h"
#include "games/ind_mid_wcca.h"
#include "games/reduction.h"
#include "games/tcpa_simulator.h"
#include "pairing/params.h"
#include "shamir/shamir.h"

namespace medcrypt::games {
namespace {

const Bytes kM0(32, 0x00);
const Bytes kM1(32, 0xff);

// ---------------------------------------------------------------------------
// IND-ID-CCA harness
// ---------------------------------------------------------------------------

TEST(IndIdCca, OmniscientAdversaryWinsViaExtractedOtherKeyPath) {
  // Extracting another identity and decrypting the challenge is
  // forbidden; but decrypting a COPY re-encrypted... the legal way to
  // win with probability 1 does not exist. Sanity: the decryption oracle
  // answers honestly for non-challenge pairs.
  IndIdCcaGame game(pairing::toy_params(), 32, 900);
  hash::HmacDrbg rng(901);
  const auto ct = ibe::full_encrypt(game.params(), "other", kM1, rng);
  EXPECT_EQ(game.decrypt("other", ct), kM1);
}

TEST(IndIdCca, RestrictionsEnforced) {
  IndIdCcaGame game(pairing::toy_params(), 32, 902);
  (void)game.extract("leaked");
  // Challenge on an extracted identity is forbidden.
  EXPECT_THROW(game.challenge("leaked", kM0, kM1), GameViolation);
  const auto& ct = game.challenge("target", kM0, kM1);
  // Extracting the challenge identity now is forbidden.
  EXPECT_THROW(game.extract("target"), GameViolation);
  // Decrypting the exact challenge is forbidden.
  EXPECT_THROW(game.decrypt("target", ct), GameViolation);
  // Other decryptions still fine.
  hash::HmacDrbg rng(903);
  const auto other = ibe::full_encrypt(game.params(), "target", kM0, rng);
  EXPECT_EQ(game.decrypt("target", other), kM0);
  (void)game.submit_guess(0);
  EXPECT_THROW(game.submit_guess(0), GameViolation);
}

TEST(IndIdCca, RandomGuesserWinsAboutHalf) {
  int wins = 0;
  hash::HmacDrbg guess_rng(904);
  for (int i = 0; i < 100; ++i) {
    IndIdCcaGame game(pairing::toy_params(), 32, 905 + i);
    (void)game.challenge("t", kM0, kM1);
    std::uint8_t g;
    guess_rng.fill(std::span(&g, 1));
    wins += game.submit_guess(g & 1);
  }
  EXPECT_GT(wins, 25);
  EXPECT_LT(wins, 75);
}

// ---------------------------------------------------------------------------
// IND-ID-TCPA harness (Definition 2)
// ---------------------------------------------------------------------------

TEST(IndIdTcpa, CorruptedSetValidation) {
  IndIdTcpaGame game(pairing::toy_params(), 32, 3, 5, 910);
  EXPECT_THROW(game.corrupt({1, 2, 3}), GameViolation);  // t-1 = 2
  EXPECT_THROW(game.corrupt({1, 1}), GameViolation);
  EXPECT_THROW(game.corrupt({0, 1}), GameViolation);
  EXPECT_THROW(game.corrupt({1, 9}), GameViolation);
  (void)game.corrupt({2, 4});
  EXPECT_THROW(game.corrupt({1, 3}), GameViolation);  // only once
}

TEST(IndIdTcpa, OraclesRequireCorruption) {
  IndIdTcpaGame game(pairing::toy_params(), 32, 2, 3, 911);
  EXPECT_THROW(game.extract("x"), GameViolation);
  EXPECT_THROW(game.challenge("x", kM0, kM1), GameViolation);
}

TEST(IndIdTcpa, CorruptedSharesAreConsistentWithFullKey) {
  // t-1 corrupted shares plus one honestly-extracted full key must be
  // consistent: interpolating {corrupted shares, implied share} is how
  // the simulator of Theorem 3.1 builds its world. Here we check the
  // corrupted shares match the dealer's real polynomial: combine t-1
  // corrupted + 1 more share derived from the full key via Lagrange.
  IndIdTcpaGame game(pairing::toy_params(), 32, 2, 3, 912);
  const auto& setup = game.corrupt({3});
  const auto shares = game.corrupted_shares("alice");
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0].index, 3u);
  EXPECT_TRUE(verify_key_share(setup, "alice", shares[0]));
}

TEST(IndIdTcpa, CorruptedSharesAllowedOnChallengeIdentity) {
  // The essence of threshold security: the adversary holds t-1 shares OF
  // THE CHALLENGE IDENTITY and still has to guess.
  IndIdTcpaGame game(pairing::toy_params(), 32, 3, 5, 913);
  (void)game.corrupt({1, 4});
  (void)game.challenge("target", kM0, kM1);
  EXPECT_NO_THROW(game.corrupted_shares("target"));
  EXPECT_THROW(game.extract("target"), GameViolation);
  (void)game.submit_guess(1);
}

TEST(IndIdTcpa, FullExtractionWinsWhenIdentityDiffers) {
  // Extracting a DIFFERENT identity is allowed and useless; extracting
  // the challenge one is blocked. An adversary with the full key of the
  // challenge identity (obtained before the challenge was announced —
  // which the rules then forbid challenging on) cannot exist. Verify the
  // bookkeeping: extract then challenge-on-same throws.
  IndIdTcpaGame game(pairing::toy_params(), 32, 2, 3, 914);
  (void)game.corrupt({1});
  (void)game.extract("known");
  EXPECT_THROW(game.challenge("known", kM0, kM1), GameViolation);
}

// ---------------------------------------------------------------------------
// IND-mID-wCCA harness (Definition 3)
// ---------------------------------------------------------------------------

TEST(IndMidWcca, OracleConsistency) {
  // user half + sem half must recombine to a working key.
  IndMidWccaGame game(pairing::toy_params(), 32, 920);
  const auto d_user = game.extract_user_key("alice");
  const auto d_sem = game.extract_sem_key("alice");
  hash::HmacDrbg rng(921);
  const auto ct = ibe::full_encrypt(game.params(), "alice", kM1, rng);
  EXPECT_EQ(ibe::full_decrypt(game.params(), d_user + d_sem, ct), kM1);
  // And the decryption oracle agrees.
  EXPECT_EQ(game.decrypt("alice", ct), kM1);
  // And the SEM token combined with the user half agrees.
  const pairing::TatePairing e(game.params().curve());
  const auto g = game.sem_query("alice", ct) * e.pair(ct.u, d_user);
  EXPECT_EQ(ibe::full_decrypt_with_mask(game.params(), g, ct), kM1);
}

TEST(IndMidWcca, ChallengeRestrictions) {
  IndMidWccaGame game(pairing::toy_params(), 32, 922);
  (void)game.extract_user_key("insider");
  EXPECT_THROW(game.challenge("insider", kM0, kM1), GameViolation);

  const auto& ct = game.challenge("target", kM0, kM1);
  EXPECT_THROW(game.extract_user_key("target"), GameViolation);
  EXPECT_THROW(game.decrypt("target", ct), GameViolation);
  // SEM queries on the challenge pair ARE allowed (the "w").
  EXPECT_NO_THROW(game.sem_query("target", ct));
  EXPECT_NO_THROW(game.extract_sem_key("target"));
  (void)game.submit_guess(0);
}

TEST(IndMidWcca, SemTokenPlusSemKeyDoNotDecryptChallenge) {
  // Operational Theorem 4.1: everything the insider coalition can get
  // on the challenge identity fails to unmask the challenge.
  IndMidWccaGame game(pairing::toy_params(), 32, 923);
  const auto& ct = game.challenge("target", kM0, kM1);
  const auto token = game.sem_query("target", ct);
  EXPECT_THROW(ibe::full_decrypt_with_mask(game.params(), token, ct),
               DecryptionError);
  // Another identity's user key cross-combined also fails.
  const auto mallory_user = game.extract_user_key("mallory");
  const pairing::TatePairing e(game.params().curve());
  EXPECT_THROW(ibe::full_decrypt_with_mask(
                   game.params(), token * e.pair(ct.u, mallory_user), ct),
               DecryptionError);
  (void)game.submit_guess(1);
}

// ---------------------------------------------------------------------------
// Theorem 4.1 reduction
// ---------------------------------------------------------------------------

TEST(Reduction, SimulatedViewIsConsistent) {
  // The crux of the proof: A's view under B must behave exactly like a
  // real mediated challenger. Check every cross-consistency A could test.
  IndIdCcaGame inner(pairing::toy_params(), 32, 930);
  WccaToCcaReduction b(inner, 931);
  hash::HmacDrbg rng(932);

  // (1) user half + sem half of the same identity recombine correctly.
  const auto d_user = b.extract_user_key("alice");
  const auto d_sem = b.extract_sem_key("alice");
  const auto ct = ibe::full_encrypt(b.params(), "alice", kM1, rng);
  EXPECT_EQ(ibe::full_decrypt(b.params(), d_user + d_sem, ct), kM1);

  // (2) SEM token * user partial unmasks like the real protocol.
  const pairing::TatePairing e(b.params().curve());
  const auto g = b.sem_query("alice", ct) * e.pair(ct.u, d_user);
  EXPECT_EQ(ibe::full_decrypt_with_mask(b.params(), g, ct), kM1);

  // (3) the decryption oracle agrees with both.
  EXPECT_EQ(b.decrypt("alice", ct), kM1);

  // (4) order independence: SEM-half first, user-half second.
  const auto bob_sem = b.extract_sem_key("bob");
  const auto bob_user = b.extract_user_key("bob");
  const auto ct_bob = ibe::full_encrypt(b.params(), "bob", kM0, rng);
  EXPECT_EQ(ibe::full_decrypt(b.params(), bob_user + bob_sem, ct_bob), kM0);
}

TEST(Reduction, BsAdvantageTracksAs) {
  // An A that wins (here: by the harness telling it the right answer via
  // a correct decryption of a RELATED ciphertext — a stand-in for "any
  // winning A") makes B win; an A that loses makes B lose. We emulate
  // both outcomes by guessing each coin value and checking exactly one
  // of two complementary runs wins.
  int wins = 0;
  for (int guess = 0; guess <= 1; ++guess) {
    IndIdCcaGame inner(pairing::toy_params(), 32, 940);  // same coin seed
    WccaToCcaReduction b(inner, 941);
    (void)b.challenge("target", kM0, kM1);
    if (b.submit_guess(guess)) ++wins;
  }
  EXPECT_EQ(wins, 1);  // deterministic coin: exactly one guess wins
}

TEST(Reduction, RestrictionsPropagate) {
  IndIdCcaGame inner(pairing::toy_params(), 32, 950);
  WccaToCcaReduction b(inner, 951);
  const auto& ct = b.challenge("target", kM0, kM1);
  EXPECT_THROW(b.extract_user_key("target"), GameViolation);
  EXPECT_THROW(b.decrypt("target", ct), GameViolation);
  EXPECT_NO_THROW(b.sem_query("target", ct));
  EXPECT_NO_THROW(b.extract_sem_key("target"));
  (void)b.submit_guess(0);
}

// ---------------------------------------------------------------------------
// Theorem 3.1 setup simulator
// ---------------------------------------------------------------------------

TEST(TcpaSimulator, SimulatedSetupIsIndistinguishableFromReal) {
  // B sets P_pub = cP without knowing c, picks corrupted shares, and the
  // published verification keys must (a) match the corrupted shares and
  // (b) pass the §3 consistency check for every t-subset — exactly what
  // an adversary could test.
  hash::HmacDrbg rng(970);
  const auto& group = pairing::toy_params();
  const auto c = bigint::BigInt::random_unit(rng, group.order());
  const ec::Point p_pub = group.generator.mul(c);  // "unknown" secret

  const std::vector<CorruptedShare> corrupted = {
      {2, bigint::BigInt::random_below(rng, group.order())},
      {5, bigint::BigInt::random_below(rng, group.order())}};
  const auto setup =
      simulate_threshold_setup(group, 32, /*t=*/3, /*n=*/5, corrupted, p_pub);

  // (a) corrupted verification keys = c_j P.
  EXPECT_EQ(setup.verification_key(2), group.generator.mul(corrupted[0].value));
  EXPECT_EQ(setup.verification_key(5), group.generator.mul(corrupted[1].value));

  // (b) every t-subset interpolates to P_pub.
  for (const auto& subset : std::vector<std::vector<std::uint32_t>>{
           {1, 2, 3}, {2, 4, 5}, {1, 3, 5}, {3, 4, 5}, {1, 2, 5}}) {
    EXPECT_TRUE(verify_setup_consistency(setup, subset));
  }
}

TEST(TcpaSimulator, SimulatedCorruptedKeySharesVerify) {
  // The d_IDj = c_j·Q_ID handed to the adversary must pass the player-
  // side key-share check against the simulated verification keys.
  hash::HmacDrbg rng(971);
  const auto& group = pairing::toy_params();
  const ec::Point p_pub =
      group.generator.mul(bigint::BigInt::random_unit(rng, group.order()));
  const std::vector<CorruptedShare> corrupted = {
      {1, bigint::BigInt::random_below(rng, group.order())}};
  const auto setup = simulate_threshold_setup(group, 32, 2, 3, corrupted, p_pub);

  const auto share = simulate_corrupted_key_share(setup, corrupted[0], "alice");
  EXPECT_TRUE(verify_key_share(setup, "alice", share));
}

TEST(TcpaSimulator, SimulatedWorldDecryptsConsistently) {
  // Stronger: build the simulated world WITH a known c (so the test can
  // play the honest players too) and check threshold decryption works —
  // i.e. the simulated keys define a genuine sharing of c.
  hash::HmacDrbg rng(972);
  const auto& group = pairing::toy_params();
  const auto c = bigint::BigInt::random_unit(rng, group.order());
  const ec::Point p_pub = group.generator.mul(c);
  const std::vector<CorruptedShare> corrupted = {
      {3, bigint::BigInt::random_below(rng, group.order())}};
  const auto setup = simulate_threshold_setup(group, 32, 2, 4, corrupted, p_pub);

  Bytes m(32);
  rng.fill(m);
  const auto ct = ibe::full_encrypt(setup.params, "target", m, rng);

  // The full key d = c·Q_ID decrypts (B's challenger side)...
  const auto q_id = ibe::map_identity(setup.params, "target");
  EXPECT_EQ(ibe::full_decrypt(setup.params, q_id.mul(c), ct), m);

  // ...and corrupted share + implied share-at-0 interpolation matches:
  // combine the corrupted player's decryption share with the share the
  // polynomial implies at another index. The implied share value at
  // index i is f(i) where f interpolates {(0, c), (3, c_3)}; compute it
  // directly and check recombination.
  const auto& q = group.order();
  // f(1) via Lagrange on nodes {0, 3}: λ0(1) = (1-3)/(0-3), λ3(1) = 1/3·...
  const bigint::BigInt x1(1), x3(3);
  const bigint::BigInt l0 =
      x1.sub_mod(x3, q).mul_mod(bigint::BigInt{}.sub_mod(x3, q).mod_inverse(q), q);
  const bigint::BigInt l3 = x1.mul_mod(x3.mod_inverse(q), q);
  const bigint::BigInt f1 =
      l0.mul_mod(c, q).add_mod(l3.mul_mod(corrupted[0].value, q), q);

  std::vector<threshold::DecryptionShare> shares;
  const pairing::TatePairing e(setup.params.curve());
  shares.push_back(threshold::DecryptionShare{1, e.pair(ct.u, q_id.mul(f1)), {}});
  shares.push_back(threshold::DecryptionShare{
      3, e.pair(ct.u, q_id.mul(corrupted[0].value)), {}});
  EXPECT_EQ(threshold::threshold_full_decrypt(setup, shares, ct), m);
}

TEST(TcpaSimulator, InputValidation) {
  hash::HmacDrbg rng(973);
  const auto& group = pairing::toy_params();
  const ec::Point p_pub = group.generator;
  const std::vector<CorruptedShare> one = {{1, bigint::BigInt(5)}};
  EXPECT_THROW(simulate_verification_keys(group, 3, 5, one, p_pub),
               InvalidArgument);  // needs t-1 = 2 shares
  const std::vector<CorruptedShare> dup = {{1, bigint::BigInt(5)},
                                           {1, bigint::BigInt(6)}};
  EXPECT_THROW(simulate_verification_keys(group, 3, 5, dup, p_pub),
               InvalidArgument);
  const std::vector<CorruptedShare> oob = {{9, bigint::BigInt(5)},
                                           {1, bigint::BigInt(6)}};
  EXPECT_THROW(simulate_verification_keys(group, 3, 5, oob, p_pub),
               InvalidArgument);
}

TEST(Reduction, CostAccountingMatchesTheoremStatement) {
  // t' = t + q_E * t_A + q_S * t_E: B pays one G1 addition per user key
  // extraction and one pairing per SEM query.
  IndIdCcaGame inner(pairing::toy_params(), 32, 960);
  WccaToCcaReduction b(inner, 961);
  hash::HmacDrbg rng(962);
  const auto ct = ibe::full_encrypt(b.params(), "x", kM0, rng);
  (void)b.extract_user_key("a");
  (void)b.extract_user_key("b");
  (void)b.sem_query("x", ct);
  (void)b.sem_query("x", ct);
  (void)b.sem_query("y", ct);
  EXPECT_EQ(b.additions_computed(), 2u);
  EXPECT_EQ(b.pairings_computed(), 3u);
}

}  // namespace
}  // namespace medcrypt::games
