#include "ec/hash_to_point.h"

#include <utility>

#include "common/error.h"
#include "ec/jacobian.h"
#include "hash/kdf.h"
#include "obs/span.h"

namespace medcrypt::ec {

namespace {

// One rejection-sampling attempt, shared by the single and batch paths so
// their outputs are bit-identical (the golden-vector test pins this).
// `ctr_input` is the caller's reusable counter ‖ input buffer; only the 4
// counter bytes are rewritten per attempt. Returns true with the affine
// candidate (x, y) — cofactor clearing is the caller's job.
bool derive_candidate(const std::shared_ptr<const Curve>& curve,
                      std::string_view domain, Bytes& ctr_input,
                      std::uint32_t counter, std::size_t xbytes, Fp& x_out,
                      Fp& y_out) {
  for (int i = 0; i < 4; ++i) {
    ctr_input[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(counter >> (24 - 8 * i));
  }
  const Bytes material = hash::expand(domain, ctr_input, xbytes + 1);
  const auto& field = curve->field();
  Fp x = field->from_bigint(
      BigInt::from_bytes_be(BytesView(material.data(), xbytes)));
  const Fp rhs = curve->rhs(x);

  Fp y;
  if (!field->sqrt_exponent().is_zero()) {
    // p ≡ 3 (mod 4): fuse the Legendre test into the root. s = rhs^((p+1)/4)
    // is a square root iff rhs is a QR; the s^2 == rhs check accepts the
    // exact same candidate set as the separate Euler-criterion power
    // (including rhs == 0, where s == 0 passes and the order-2 point is
    // later killed by cofactor clearing) at half the exponentiation cost.
    Fp s = rhs.pow(field->sqrt_exponent());
    if (!(s.square() == rhs)) return false;
    y = std::move(s);
  } else {
    if (!rhs.is_square()) return false;
    y = rhs.sqrt();
  }
  // Use one derived bit to pick the root deterministically.
  const bool want_odd = (material[xbytes] & 1) != 0;
  if (y.parity() != want_odd) y.negate_inplace();
  x_out = std::move(x);
  y_out = std::move(y);
  return true;
}

// counter ‖ input — public hash-to-curve material, not a key seed. Built
// once per hash; derive_candidate patches the counter bytes in place.
Bytes make_ctr_input(BytesView input) {
  Bytes ctr_input(4);
  ctr_input.reserve(4 + input.size());
  ctr_input.insert(ctr_input.end(), input.begin(), input.end());
  return ctr_input;
}

}  // namespace

Point hash_to_subgroup(const std::shared_ptr<const Curve>& curve,
                       std::string_view domain, BytesView input) {
  // Spans the whole try-and-increment loop, so the histogram exposes the
  // geometric spread of attempts (~2 expected) as latency spread.
  obs::Span span(obs::Stage::kHashToPoint);
  // 128 extra bits make the mod-p bias negligible.
  const std::size_t xbytes = curve->field()->byte_size() + 16;
  Bytes ctr_input = make_ctr_input(input);

  Fp x, y;
  for (std::uint32_t counter = 0;; ++counter) {
    if (!derive_candidate(curve, domain, ctr_input, counter, xbytes, x, y)) {
      continue;
    }
    Point candidate = curve->point(x, y).mul(curve->cofactor());
    if (candidate.is_infinity()) continue;  // killed by cofactor clearing
    return candidate;
  }
}

std::vector<Point> hash_to_subgroup_batch(
    const std::shared_ptr<const Curve>& curve, std::string_view domain,
    std::span<const BytesView> inputs) {
  obs::Span span(obs::Stage::kHashToPointBatch);
  const std::size_t xbytes = curve->field()->byte_size() + 16;

  // Cofactor-clear each accepted candidate in Jacobian form; the single
  // batched conversion below replaces per-point inversions.
  std::vector<JacPoint> cleared(inputs.size());
  Fp x, y;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Bytes ctr_input = make_ctr_input(inputs[i]);
    for (std::uint32_t counter = 0;; ++counter) {
      if (!derive_candidate(curve, domain, ctr_input, counter, xbytes, x,
                            y)) {
        continue;
      }
      cleared[i] = jac_mul_raw(curve->point(x, y), curve->cofactor());
      if (cleared[i].inf) continue;  // killed by cofactor clearing
      break;
    }
  }
  return jac_to_affine_batch(curve, cleared);
}

const ShardedLruCache<Point>& identity_point_cache() {
  // Leaked like the metrics registry: cached points keep their curve
  // contexts alive, and lookups may run during static teardown.
  static const auto* cache = new ShardedLruCache<Point>(
      {.capacity = 4096, .metric_prefix = "sem.cache.h1"});
  return *cache;
}

Point hash_to_subgroup_cached(const std::shared_ptr<const Curve>& curve,
                              std::string_view domain, BytesView input,
                              std::uint64_t epoch) {
  return identity_point_cache().get_or_compute(
      domain, input, epoch,
      [&] { return hash_to_subgroup(curve, domain, input); },
      // Distinct curve contexts may produce colliding tags; a cached
      // point from another curve is a miss, not a wrong answer.
      [&](const Point& p) { return p.curve() == curve; });
}

}  // namespace medcrypt::ec
