// (t, n) threshold decryption for FO-ElGamal — the paper's generic
// "any threshold cryptosystem yields a mediated one" substrate (§4 end),
// with the (2, 2) case powering mediated ElGamal.
//
//   Setup    dealer shares x; verification keys Y_i = x_i·P; Y = x·P.
//   Decrypt  player i outputs the partial point S_i = x_i·C1;
//            (optionally checked via ê(P, S_i) = ê(Y_i, C1) — our group
//            is pairing-friendly, so share verification is free);
//            S = Σ L_i S_i = x·C1 feeds fo_decrypt_with_shared.
#pragma once

#include <vector>

#include "elgamal/fo_transform.h"
#include "shamir/shamir.h"

namespace medcrypt::threshold {

using bigint::BigInt;
using ec::Point;

/// One player's ElGamal key share x_i = f(i). Wiped on destruction.
struct ElGamalKeyShare {
  ElGamalKeyShare() = default;
  ElGamalKeyShare(std::uint32_t index_, BigInt value_)
      : index(index_), value(std::move(value_)) {}
  ElGamalKeyShare(const ElGamalKeyShare&) = default;
  ElGamalKeyShare(ElGamalKeyShare&&) = default;
  ElGamalKeyShare& operator=(const ElGamalKeyShare&) = default;
  ElGamalKeyShare& operator=(ElGamalKeyShare&&) = default;
  ~ElGamalKeyShare() { value.wipe(); }

  std::uint32_t index = 0;
  BigInt value;
};

/// Public output of the threshold ElGamal setup.
struct ElGamalSetup {
  elgamal::Params params;
  std::size_t threshold = 0;
  std::size_t players = 0;
  Point public_key;                      // Y = x·P
  std::vector<Point> verification_keys;  // Y_i = x_i·P

  const Point& verification_key(std::uint32_t index) const;
};

/// Dealer output.
struct ElGamalDealing {
  ElGamalSetup setup;
  std::vector<ElGamalKeyShare> shares;
};

/// Runs the trusted-dealer setup.
ElGamalDealing elgamal_threshold_setup(elgamal::Params params, std::size_t t,
                                       std::size_t n, RandomSource& rng);

/// A partial decryption S_i = x_i·C1.
struct ElGamalDecryptionShare {
  std::uint32_t index = 0;
  Point value;
};

/// Player-side partial decryption.
ElGamalDecryptionShare elgamal_decrypt_share(const ElGamalKeyShare& share,
                                             const Point& c1);

/// Pairing-based share check: ê(P, S_i) = ê(Y_i, C1).
bool elgamal_verify_share(const ElGamalSetup& setup, const Point& c1,
                          const ElGamalDecryptionShare& share);

/// Combines exactly t distinct shares into S = x·C1.
Point elgamal_combine_shares(const ElGamalSetup& setup,
                             std::span<const ElGamalDecryptionShare> shares);

}  // namespace medcrypt::threshold
