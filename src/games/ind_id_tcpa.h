// Definition 2 (§3.3): the IND-ID-TCPA game against the (t, n) threshold
// Boneh–Franklin IBE (BasicIdent variant).
//
// Game flow enforced by this challenger:
//   1. the adversary names t-1 players to corrupt;
//   2. it receives the public setup;
//   3. oracles: full key extraction for identities of its choice, and
//      the corrupted players' key shares for any identity (this is what
//      "corrupting a player" yields per identity);
//   4. it challenges on an un-extracted identity with (m0, m1);
//   5. more queries (not extracting the challenge identity);
//   6. it guesses the coin.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "games/game_common.h"
#include "hash/drbg.h"
#include "threshold/threshold_ibe.h"

namespace medcrypt::games {

/// Challenger for IND-ID-TCPA (Definition 2).
class IndIdTcpaGame {
 public:
  IndIdTcpaGame(pairing::ParamSet group, std::size_t message_len,
                std::size_t t, std::size_t n, std::uint64_t seed);

  /// Step 1+2: the adversary commits to its corrupted set (exactly t-1
  /// distinct player indices) and receives the public setup.
  const threshold::ThresholdSetup& corrupt(
      std::vector<std::uint32_t> players);

  // --- oracles (require corrupt() first) -------------------------------------

  /// Full key extraction d_ID = s·Q_ID (as in the classical BF scheme).
  ec::Point extract(std::string_view identity);

  /// The corrupted players' key shares d_IDi = f(i)·Q_ID for identity.
  /// Allowed for EVERY identity, including the (future or current)
  /// challenge identity — that is the threshold security statement.
  std::vector<threshold::KeyShare> corrupted_shares(std::string_view identity);

  // --- challenge / guess -------------------------------------------------------

  const ibe::BasicCiphertext& challenge(std::string_view identity,
                                        BytesView m0, BytesView m1);

  bool submit_guess(int b);

  Phase phase() const { return phase_; }

 private:
  void require_corrupted() const;

  hash::HmacDrbg rng_;
  threshold::ThresholdDealer dealer_;
  std::optional<std::vector<std::uint32_t>> corrupted_;
  Phase phase_ = Phase::kQuery1;
  std::set<std::string, std::less<>> extracted_;
  std::optional<std::string> challenge_identity_;
  std::optional<ibe::BasicCiphertext> challenge_ct_;
  int coin_ = 0;
};

}  // namespace medcrypt::games
