// The GDH signature of Boneh, Lynn and Shacham [6] (paper §5).
//
// Over a Gap-Diffie-Hellman group (CDH hard, DDH easy via the pairing):
//   Keygen   x ∈ Z_q, R = xP
//   Sign     σ = x·h(M) with h : {0,1}* -> G1
//   Verify   (P, R, h(M), σ) is a DH tuple  ⇔  ê(P, σ) = ê(R, h(M))
//
// Signatures are single compressed G1 points — the "160-bit signature"
// (and the 160-bit SEM token of the mediated variant) the paper contrasts
// with 1024-bit mRSA transfers.
#pragma once

#include "ec/point.h"
#include "pairing/param_gen.h"

namespace medcrypt::gdh {

using bigint::BigInt;
using ec::Point;

/// GDH signature key pair. The secret scalar is wiped on destruction.
struct KeyPair {
  KeyPair() = default;
  KeyPair(BigInt secret_, Point pub_)
      : secret(std::move(secret_)), pub(std::move(pub_)) {}
  KeyPair(const KeyPair&) = default;
  KeyPair(KeyPair&&) = default;
  KeyPair& operator=(const KeyPair&) = default;
  KeyPair& operator=(KeyPair&&) = default;
  ~KeyPair() { secret.wipe(); }

  BigInt secret;  // x
  Point pub;      // R = xP
};

/// Samples a key pair over `group`.
KeyPair keygen(const pairing::ParamSet& group, RandomSource& rng);

/// The message hash h : {0,1}* -> G1 (full-domain hash onto the subgroup).
Point hash_message(const pairing::ParamSet& group, BytesView message);

/// Signs: σ = x·h(M).
Point sign(const pairing::ParamSet& group, const BigInt& secret,
           BytesView message);

/// Verifies via the DDH check ê(P, σ) = ê(R, h(M)).
bool verify(const pairing::ParamSet& group, const Point& pub,
            BytesView message, const Point& signature);

/// Additive 2-of-2 key split for the mediated variant (§5):
/// x = x_user + x_sem (mod q). Returns {x_user, x_sem}.
std::pair<BigInt, BigInt> split_key(const BigInt& secret, const BigInt& q,
                                    RandomSource& rng);

}  // namespace medcrypt::gdh
