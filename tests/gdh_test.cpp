// Tests for the GDH (BLS) signature: correctness, unforgeability smoke
// checks, key splitting for the mediated variant, signature size.
#include <gtest/gtest.h>

#include "gdh/bls.h"
#include "hash/drbg.h"
#include "pairing/params.h"

namespace medcrypt::gdh {
namespace {

using hash::HmacDrbg;

class GdhTest : public ::testing::Test {
 protected:
  GdhTest() : rng_(95), group_(pairing::toy_params()) {}

  HmacDrbg rng_;
  const pairing::ParamSet& group_;
};

TEST_F(GdhTest, SignVerifyRoundTrip) {
  const KeyPair kp = keygen(group_, rng_);
  const Bytes msg = str_bytes("transfer 100 to bob");
  const Point sig = sign(group_, kp.secret, msg);
  EXPECT_TRUE(verify(group_, kp.pub, msg, sig));
}

TEST_F(GdhTest, VerifyRejectsWrongMessage) {
  const KeyPair kp = keygen(group_, rng_);
  const Point sig = sign(group_, kp.secret, str_bytes("msg A"));
  EXPECT_FALSE(verify(group_, kp.pub, str_bytes("msg B"), sig));
}

TEST_F(GdhTest, VerifyRejectsWrongKey) {
  const KeyPair kp1 = keygen(group_, rng_);
  const KeyPair kp2 = keygen(group_, rng_);
  const Bytes msg = str_bytes("msg");
  EXPECT_FALSE(verify(group_, kp2.pub, msg, sign(group_, kp1.secret, msg)));
}

TEST_F(GdhTest, VerifyRejectsTamperedSignature) {
  const KeyPair kp = keygen(group_, rng_);
  const Bytes msg = str_bytes("msg");
  const Point sig = sign(group_, kp.secret, msg);
  EXPECT_FALSE(verify(group_, kp.pub, msg, sig + group_.generator));
  EXPECT_FALSE(verify(group_, kp.pub, msg, -sig));
  EXPECT_FALSE(verify(group_, kp.pub, msg, group_.curve->infinity()));
}

TEST_F(GdhTest, SignatureIsDeterministic) {
  const KeyPair kp = keygen(group_, rng_);
  const Bytes msg = str_bytes("msg");
  EXPECT_EQ(sign(group_, kp.secret, msg), sign(group_, kp.secret, msg));
}

TEST_F(GdhTest, SignatureIsOneCompressedPoint) {
  // The headline size claim: a GDH signature is one G1 element —
  // ~|p| bits with point compression (vs 1024-bit RSA).
  const KeyPair kp = keygen(group_, rng_);
  const Point sig = sign(group_, kp.secret, str_bytes("m"));
  EXPECT_EQ(sig.to_bytes().size(), group_.curve->compressed_size());
}

TEST_F(GdhTest, SplitKeyRecombines) {
  const KeyPair kp = keygen(group_, rng_);
  const auto [x_user, x_sem] = split_key(kp.secret, group_.order(), rng_);
  EXPECT_EQ(x_user.add_mod(x_sem, group_.order()), kp.secret);

  // Half-signatures add to the full signature (the §5 protocol).
  const Bytes msg = str_bytes("pay");
  const Point h = hash_message(group_, msg);
  const Point full = h.mul(x_user) + h.mul(x_sem);
  EXPECT_EQ(full, sign(group_, kp.secret, msg));
  EXPECT_TRUE(verify(group_, kp.pub, msg, full));
}

TEST_F(GdhTest, HalfSignatureDoesNotVerify) {
  const KeyPair kp = keygen(group_, rng_);
  const auto [x_user, x_sem] = split_key(kp.secret, group_.order(), rng_);
  const Bytes msg = str_bytes("pay");
  const Point h = hash_message(group_, msg);
  EXPECT_FALSE(verify(group_, kp.pub, msg, h.mul(x_user)));
  EXPECT_FALSE(verify(group_, kp.pub, msg, h.mul(x_sem)));
}

TEST_F(GdhTest, HashMessageInSubgroup) {
  for (const char* m : {"a", "b", "hello world", ""}) {
    const Point h = hash_message(group_, str_bytes(m));
    EXPECT_FALSE(h.is_infinity());
    EXPECT_TRUE(h.in_subgroup());
  }
}

TEST_F(GdhTest, AggregationProperty) {
  // BLS linearity: sig(x1+x2, m) = sig(x1, m) + sig(x2, m) — the algebra
  // behind both the threshold and the mediated variants.
  const KeyPair a = keygen(group_, rng_);
  const KeyPair b = keygen(group_, rng_);
  const Bytes msg = str_bytes("joint");
  const Point joint_sig =
      sign(group_, a.secret, msg) + sign(group_, b.secret, msg);
  const Point joint_pub = a.pub + b.pub;
  EXPECT_TRUE(verify(group_, joint_pub, msg, joint_sig));
}

}  // namespace
}  // namespace medcrypt::gdh
