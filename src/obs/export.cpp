#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace medcrypt::obs {

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "medcrypt_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out.append(buf,
               std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
  }
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string n = prom_name(c.name);
    appendf(out, "# TYPE %s counter\n", n.c_str());
    appendf(out, "%s %" PRIu64 "\n", n.c_str(), c.value);
  }
  for (const auto& g : snap.gauges) {
    const std::string n = prom_name(g.name);
    appendf(out, "# TYPE %s gauge\n", n.c_str());
    appendf(out, "%s %" PRId64 "\n", n.c_str(), g.value);
  }
  for (const auto& h : snap.histograms) {
    const std::string n = prom_name(h.name);
    appendf(out, "# TYPE %s summary\n", n.c_str());
    appendf(out, "%s{quantile=\"0.5\"} %.1f\n", n.c_str(),
            h.hist.percentile(0.50));
    appendf(out, "%s{quantile=\"0.9\"} %.1f\n", n.c_str(),
            h.hist.percentile(0.90));
    appendf(out, "%s{quantile=\"0.99\"} %.1f\n", n.c_str(),
            h.hist.percentile(0.99));
    appendf(out, "%s_sum %" PRIu64 "\n", n.c_str(), h.hist.sum);
    appendf(out, "%s_count %" PRIu64 "\n", n.c_str(), h.hist.count);
    appendf(out, "%s_max %" PRIu64 "\n", n.c_str(), h.hist.max);
    // Exemplars ride along as comment lines (OpenMetrics-flavoured):
    // classic Prometheus parsers and tools/obs_check.py skip '#' lines,
    // while trace-aware consumers can still recover the ids.
    for (const auto& ex : h.hist.exemplars) {
      if (ex.trace_id == 0) continue;
      appendf(out, "# EXEMPLAR %s{trace_id=\"%016" PRIx64 "\"} %" PRIu64 "\n",
              n.c_str(), ex.trace_id, ex.value);
    }
  }
  return out;
}

namespace {

void json_hist(std::string& out, const Histogram::Snapshot& h) {
  appendf(out,
          "{\"count\": %" PRIu64 ", \"sum\": %" PRIu64 ", \"max\": %" PRIu64
          ", \"mean\": %.1f, \"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f"
          ", \"exemplars\": [",
          h.count, h.sum, h.max, h.mean(), h.percentile(0.50),
          h.percentile(0.90), h.percentile(0.99));
  bool first = true;
  for (const auto& ex : h.exemplars) {
    if (ex.trace_id == 0) continue;
    appendf(out, "%s{\"trace_id\": \"%016" PRIx64 "\", \"value\": %" PRIu64 "}",
            first ? "" : ", ", ex.trace_id, ex.value);
    first = false;
  }
  out += "]}";
}

}  // namespace

std::string to_json(const MetricsSnapshot& snap,
                    const std::vector<TraceData>& traces) {
  // Metric names are code-controlled identifiers (no quotes/backslashes),
  // so plain %s inside quotes is safe.
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    appendf(out, "%s\n    \"%s\": %" PRIu64, i ? "," : "",
            snap.counters[i].name.c_str(), snap.counters[i].value);
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    appendf(out, "%s\n    \"%s\": %" PRId64, i ? "," : "",
            snap.gauges[i].name.c_str(), snap.gauges[i].value);
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    appendf(out, "%s\n    \"%s\": ", i ? "," : "",
            snap.histograms[i].name.c_str());
    json_hist(out, snap.histograms[i].hist);
  }
  out += snap.histograms.empty() ? "},\n" : "\n  },\n";
  out += "  \"traces\": [";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const TraceData& t = traces[i];
    appendf(out, "%s\n    {\"pipeline\": \"%s\", \"trace_id\": \"%016" PRIx64
                 "\", \"parent_id\": \"%016" PRIx64 "\", \"total_ns\": %" PRIu64
                 ", \"dropped\": %u, \"stages\": [",
            i ? "," : "", t.pipeline, t.trace_id, t.parent_id, t.total_ns,
            t.dropped);
    for (std::uint32_t s = 0; s < t.stage_count; ++s) {
      const auto& rec = t.stages[s];
      appendf(out, "%s{\"stage\": \"%s\", \"offset_ns\": %" PRIu64
                   ", \"dur_ns\": %" PRIu64 "}",
              s ? ", " : "", stage_name(rec.stage), rec.offset_ns,
              rec.dur_ns);
    }
    out += "], \"baggage\": {";
    for (std::uint32_t b = 0; b < t.baggage_count; ++b) {
      appendf(out, "%s\"%s\": %" PRIu64, b ? ", " : "", t.baggage[b].name,
              t.baggage[b].value);
    }
    out += "}}";
  }
  out += traces.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace medcrypt::obs
