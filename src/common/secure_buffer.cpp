#include "common/secure_buffer.h"

#include <algorithm>
#include <atomic>

namespace medcrypt {

namespace {
// Monotonic telemetry total; readers only ever sum it, so unordered
// increments are safe.
// medlint: relaxed_ok
std::atomic<std::uint64_t> g_wipe_total{0};
}  // namespace

void secure_wipe(std::span<std::uint8_t> data) {
  // Volatile stores: the compiler must assume they are observable, so it
  // cannot drop the scrub even when the buffer is freed immediately after.
  volatile std::uint8_t* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = 0;
  g_wipe_total.fetch_add(data.size(), std::memory_order_relaxed);
}

void secure_wipe(Bytes& data) {
  secure_wipe(std::span<std::uint8_t>(data.data(), data.size()));
  data.clear();
}

std::uint64_t secure_wipe_total() {
  return g_wipe_total.load(std::memory_order_relaxed);
}

SecureBuffer::SecureBuffer(std::size_t size, std::uint8_t fill)
    : data_(size ? new std::uint8_t[size] : nullptr), size_(size) {
  std::fill_n(data_, size_, fill);
}

SecureBuffer::SecureBuffer(BytesView data)
    : data_(data.empty() ? nullptr : new std::uint8_t[data.size()]),
      size_(data.size()) {
  std::copy(data.begin(), data.end(), data_);
}

SecureBuffer::SecureBuffer(Bytes&& data) : SecureBuffer(BytesView(data)) {
  secure_wipe(data);
}

SecureBuffer::SecureBuffer(const SecureBuffer& other)
    : SecureBuffer(other.view()) {}

SecureBuffer::SecureBuffer(SecureBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

SecureBuffer& SecureBuffer::operator=(const SecureBuffer& other) {
  if (this != &other) assign(other.view());
  return *this;
}

SecureBuffer& SecureBuffer::operator=(SecureBuffer&& other) noexcept {
  if (this != &other) {
    clear();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

SecureBuffer::~SecureBuffer() { clear(); }

void SecureBuffer::assign(BytesView data) {
  // Self-assignment from a view into our own storage would read freed
  // memory; copy via a temporary in that (unlikely) aliasing case.
  if (!empty() && !data.empty() && data.data() >= data_ &&
      data.data() < data_ + size_) {
    SecureBuffer tmp(data);
    *this = std::move(tmp);
    return;
  }
  clear();
  if (!data.empty()) {
    data_ = new std::uint8_t[data.size()];
    size_ = data.size();
    std::copy(data.begin(), data.end(), data_);
  }
}

void SecureBuffer::resize(std::size_t size) {
  if (size == size_) return;
  std::uint8_t* grown = size ? new std::uint8_t[size] : nullptr;
  const std::size_t keep = std::min(size, size_);
  std::copy_n(data_, keep, grown);
  std::fill_n(grown + keep, size - keep, 0);
  std::uint8_t* old = data_;
  const std::size_t old_size = size_;
  data_ = grown;
  size_ = size;
  secure_wipe(std::span<std::uint8_t>(old, old_size));
  delete[] old;
}

void SecureBuffer::clear() {
  secure_wipe(span());
  delete[] data_;
  data_ = nullptr;
  size_ = 0;
}

bool SecureBuffer::operator==(const SecureBuffer& other) const {
  return ct_equal(view(), other.view());
}

}  // namespace medcrypt
