// Planted obs-secret-arg violations: secret-named values flowing into
// obs:: instrumentation calls. Line numbers are asserted by
// medlint_test.cpp — keep them stable.
namespace obs {
struct Gauge {
  void set(long) {}
  void add(long) {}
};
struct Reg {
  Gauge& gauge(const char*);
  Gauge& counter(const char*);
};
Reg& registry();
}  // namespace obs

void leak_metrics(const long& master_key, const long& key_share,
                  const long& key_len) {
  obs::registry().gauge("sem.key").set(master_key);       // line 18: flagged
  obs::registry().counter("sem.shares").add(key_share);   // line 19: flagged
  obs::registry().gauge("sem.key_len").set(key_len);      // benign tail: clean
}
