# Empty dependencies file for signing_service.
# This may be replaced when dependencies are built.
