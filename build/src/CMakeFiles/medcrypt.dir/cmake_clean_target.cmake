file(REMOVE_RECURSE
  "libmedcrypt.a"
)
