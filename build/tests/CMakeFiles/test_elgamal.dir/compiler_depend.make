# Empty compiler generated dependencies file for test_elgamal.
# This may be replaced when dependencies are built.
