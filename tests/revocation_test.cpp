// Tests for the two revocation architectures: instant SEM revocation vs
// the validity-period baseline (PKG re-issuance), including the latency
// and PKG-load asymmetries the paper claims.
#include <gtest/gtest.h>

#include "common/error.h"
#include "hash/drbg.h"
#include "ibe/boneh_franklin.h"
#include "mediated/mediated_ibe.h"
#include "pairing/params.h"
#include "revocation/revocation.h"
#include "revocation/validity_period.h"

namespace medcrypt::revocation {
namespace {

using hash::HmacDrbg;

TEST(RevocationAuthority, InstantEffect) {
  auto list = std::make_shared<mediated::RevocationList>();
  RevocationAuthority authority(list);
  EXPECT_FALSE(authority.is_revoked("alice"));
  authority.revoke("alice");
  EXPECT_TRUE(authority.is_revoked("alice"));
  EXPECT_TRUE(list->is_revoked("alice"));
  EXPECT_EQ(authority.revocations(), 1u);
  ASSERT_EQ(authority.effect_latencies_ns().size(), 1u);
  EXPECT_EQ(authority.effect_latencies_ns()[0], 0u);  // instant
  authority.unrevoke("alice");
  EXPECT_FALSE(authority.is_revoked("alice"));
}

TEST(RevocationList, SizeTracksEntries) {
  mediated::RevocationList list;
  list.revoke("a");
  list.revoke("b");
  list.revoke("a");  // idempotent
  EXPECT_EQ(list.size(), 2u);
  list.unrevoke("a");
  EXPECT_EQ(list.size(), 1u);
}

class ValidityPeriodTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kPeriod = 1'000'000'000;  // 1 virtual second

  ValidityPeriodTest()
      : rng_(150), pkg_(pairing::toy_params(), 32, kPeriod, rng_) {}

  HmacDrbg rng_;
  ValidityPeriodPkg pkg_;
};

TEST_F(ValidityPeriodTest, QualifiedIdentities) {
  EXPECT_EQ(ValidityPeriodPkg::qualified_identity("alice", 7), "alice|7");
  EXPECT_EQ(pkg_.period_at(0), 0u);
  EXPECT_EQ(pkg_.period_at(kPeriod - 1), 0u);
  EXPECT_EQ(pkg_.period_at(kPeriod), 1u);
  EXPECT_EQ(pkg_.period_at(5 * kPeriod + 3), 5u);
}

TEST_F(ValidityPeriodTest, PeriodKeysDecryptOnlyTheirPeriod) {
  pkg_.enroll("alice");
  HmacDrbg rng(151);
  Bytes m(32);
  rng.fill(m);

  const auto key_p0 = pkg_.extract_for_period("alice", 0);
  const auto ct_p0 = ibe::full_encrypt(
      pkg_.params(), ValidityPeriodPkg::qualified_identity("alice", 0), m, rng);
  const auto ct_p1 = ibe::full_encrypt(
      pkg_.params(), ValidityPeriodPkg::qualified_identity("alice", 1), m, rng);

  EXPECT_EQ(ibe::full_decrypt(pkg_.params(), key_p0, ct_p0), m);
  EXPECT_THROW(ibe::full_decrypt(pkg_.params(), key_p0, ct_p1),
               DecryptionError);
}

TEST_F(ValidityPeriodTest, RevocationWaitsForPeriodBoundary) {
  pkg_.enroll("alice");
  // Revoke mid-period: effect latency is the remaining time to boundary.
  const std::uint64_t now = kPeriod / 4;
  pkg_.revoke("alice", now);
  ASSERT_EQ(pkg_.effect_latencies_ns().size(), 1u);
  EXPECT_EQ(pkg_.effect_latencies_ns()[0], kPeriod - now);
  // After revocation, extraction is denied (the PKG stops issuing).
  EXPECT_THROW(pkg_.extract_for_period("alice", 1), RevokedError);
}

TEST_F(ValidityPeriodTest, ReissueLoadScalesWithUsers) {
  for (int i = 0; i < 20; ++i) pkg_.enroll("user" + std::to_string(i));
  EXPECT_EQ(pkg_.reissue_all(0), 20u);
  pkg_.revoke("user3", kPeriod / 2);
  pkg_.revoke("user7", kPeriod / 2);
  EXPECT_EQ(pkg_.reissue_all(1), 18u);
  EXPECT_EQ(pkg_.keys_issued(), 38u);
}

TEST_F(ValidityPeriodTest, UnknownIdentityRejected) {
  EXPECT_THROW(pkg_.extract_for_period("ghost", 0), InvalidArgument);
}

TEST_F(ValidityPeriodTest, RejectsZeroPeriod) {
  HmacDrbg rng(152);
  EXPECT_THROW(ValidityPeriodPkg(pairing::toy_params(), 32, 0, rng),
               InvalidArgument);
}

TEST(RevocationComparison, SemBeatsValidityPeriodOnLatencyAndLoad) {
  // A miniature version of experiment F2: N users, one revocation per
  // period, D periods. The SEM architecture issues N keys total and
  // revokes with zero latency; the validity-period PKG re-issues every
  // period and revokes with latency up to a full period.
  constexpr std::uint64_t kPeriod = 1'000'000;
  constexpr int kUsers = 10, kPeriods = 5;
  HmacDrbg rng(153);

  // --- validity-period side ---
  ValidityPeriodPkg vp(pairing::toy_params(), 32, kPeriod, rng);
  for (int i = 0; i < kUsers; ++i) vp.enroll("u" + std::to_string(i));
  for (int p = 0; p < kPeriods; ++p) {
    vp.reissue_all(p);
    vp.revoke("u" + std::to_string(p), p * kPeriod + kPeriod / 2);
  }

  // --- SEM side ---
  ibe::Pkg pkg(pairing::toy_params(), 32, rng);
  auto list = std::make_shared<mediated::RevocationList>();
  mediated::IbeMediator sem(pkg.params(), list);
  RevocationAuthority authority(list);
  std::uint64_t sem_keys_issued = 0;
  for (int i = 0; i < kUsers; ++i) {
    (void)enroll_ibe_user(pkg, sem, "u" + std::to_string(i), rng);
    ++sem_keys_issued;  // once, ever
  }
  for (int p = 0; p < kPeriods; ++p) authority.revoke("u" + std::to_string(p));

  // PKG load: SEM = N; validity-period ≈ N * periods (minus revoked).
  EXPECT_EQ(sem_keys_issued, static_cast<std::uint64_t>(kUsers));
  EXPECT_GT(vp.keys_issued(), sem_keys_issued * (kPeriods - 2));

  // Time-to-revoke: SEM = 0; validity-period = half a period here.
  for (auto lat : authority.effect_latencies_ns()) EXPECT_EQ(lat, 0u);
  for (auto lat : vp.effect_latencies_ns()) EXPECT_EQ(lat, kPeriod / 2);
}

}  // namespace
}  // namespace medcrypt::revocation
