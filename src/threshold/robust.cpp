#include "threshold/robust.h"

#include "hash/kdf.h"

namespace medcrypt::threshold {

using bigint::BigInt;
using ec::Point;
using field::Fp2;

namespace {

// Fiat–Shamir challenge over the full statement and commitments.
BigInt challenge(const Fp2& share_value, const Fp2& vk_pairing, const Fp2& w1,
                 const Fp2& w2, const Point& u, const BigInt& order) {
  Bytes data = share_value.to_bytes();
  const Bytes vk = vk_pairing.to_bytes();
  const Bytes b1 = w1.to_bytes();
  const Bytes b2 = w2.to_bytes();
  const Bytes ub = u.to_bytes();
  data.insert(data.end(), vk.begin(), vk.end());
  data.insert(data.end(), b1.begin(), b1.end());
  data.insert(data.end(), b2.begin(), b2.end());
  data.insert(data.end(), ub.begin(), ub.end());
  return hash::hash_to_range("TIBE.proof", data, order);
}

}  // namespace

ShareProof prove_share(const pairing::TatePairing& pairing,
                       const Point& generator, const Point& u,
                       const Point& d_idi, const Fp2& share_value,
                       const Fp2& vk_pairing, const BigInt& order,
                       RandomSource& rng) {
  // Commitment R = k·P for random k (a uniform subgroup element).
  const BigInt k = BigInt::random_unit(rng, order);
  const Point r = generator.mul(k);

  ShareProof proof;
  proof.w1 = pairing.pair(generator, r);
  proof.w2 = pairing.pair(u, r);
  proof.e = challenge(share_value, vk_pairing, proof.w1, proof.w2, u, order);
  proof.v = r + d_idi.mul(proof.e);
  return proof;
}

bool verify_share_proof(const pairing::TatePairing& pairing,
                        const Point& generator, const Point& u,
                        const Fp2& share_value, const Fp2& vk_pairing,
                        const BigInt& order, const ShareProof& proof) {
  const BigInt e =
      challenge(share_value, vk_pairing, proof.w1, proof.w2, u, order);
  // The Fiat–Shamir challenge is a published proof component; branching
  // on it reveals only the (public) accept/reject verdict.
  // medlint: allow(secret-branch, ct-variable-time)
  if (e != proof.e) return false;
  // ê(P, V) = w1 · ê(P_pub^(i), Q_ID)^e  medlint: allow(secret-branch, ct-variable-time)
  if (!(pairing.pair(generator, proof.v) == proof.w1 * vk_pairing.pow(e))) {
    return false;
  }
  // ê(U, V) = w2 · S^e
  return pairing.pair(u, proof.v) == proof.w2 * share_value.pow(e);
}

}  // namespace medcrypt::threshold
