// Tests for the Feldman-VSS DKG and its integration with the threshold
// GDH and threshold IBE schemes (dealer-less operation).
#include <gtest/gtest.h>

#include "common/error.h"
#include "hash/drbg.h"
#include "pairing/params.h"
#include "threshold/dkg.h"

namespace medcrypt::threshold {
namespace {

using hash::HmacDrbg;

// Runs the full protocol among honest players; returns per-player results.
std::vector<DkgParticipant::Result> run_honest_dkg(std::size_t t,
                                                   std::size_t n,
                                                   std::uint64_t seed) {
  HmacDrbg rng(seed);
  std::vector<DkgParticipant> players;
  players.reserve(n);
  for (std::uint32_t i = 1; i <= n; ++i) {
    players.emplace_back(pairing::toy_params(), t, n, i, rng);
  }
  // Round 1: broadcasts.
  for (auto& receiver : players) {
    for (const auto& sender : players) {
      if (sender.index() != receiver.index()) {
        receiver.receive_commitment(sender.commitment());
      }
    }
  }
  // Round 1: private shares; round 2: verification.
  for (auto& receiver : players) {
    for (const auto& sender : players) {
      if (sender.index() != receiver.index()) {
        EXPECT_TRUE(receiver.receive_share(sender.index(),
                                           sender.share_for(receiver.index())));
      }
    }
  }
  std::vector<DkgParticipant::Result> results;
  results.reserve(n);
  for (const auto& p : players) results.push_back(p.finalize());
  return results;
}

TEST(Dkg, AllPlayersAgreeOnPublicOutputs) {
  const auto results = run_honest_dkg(3, 5, 300);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].public_key, results[0].public_key);
    EXPECT_EQ(results[i].qualified, results[0].qualified);
    ASSERT_EQ(results[i].verification_keys.size(), 5u);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(results[i].verification_keys[j],
                results[0].verification_keys[j]);
    }
  }
  EXPECT_EQ(results[0].qualified.size(), 5u);
}

TEST(Dkg, SharesInterpolateToThePublicKeySecret) {
  const auto results = run_honest_dkg(2, 3, 301);
  const auto& group = pairing::toy_params();
  // Reconstruct x from 2 shares and check Y = xP.
  std::vector<shamir::Share> shares = {
      {1, results[0].secret_share}, {3, results[2].secret_share}};
  const auto x = shamir::reconstruct_secret(shares, group.order());
  EXPECT_EQ(group.generator.mul(x), results[0].public_key);
}

TEST(Dkg, VerificationKeysMatchShares) {
  const auto results = run_honest_dkg(3, 4, 302);
  const auto& group = pairing::toy_params();
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(group.generator.mul(results[j].secret_share),
              results[j].verification_keys[j]);
  }
}

TEST(Dkg, BadShareTriggersComplaintAndDisqualification) {
  HmacDrbg rng(303);
  DkgParticipant p1(pairing::toy_params(), 2, 3, 1, rng);
  DkgParticipant p2(pairing::toy_params(), 2, 3, 2, rng);
  DkgParticipant cheater(pairing::toy_params(), 2, 3, 3, rng);

  p1.receive_commitment(p2.commitment());
  p1.receive_commitment(cheater.commitment());
  EXPECT_TRUE(p1.receive_share(2, p2.share_for(1)));
  // Cheater sends a wrong share:
  EXPECT_FALSE(p1.receive_share(
      3, cheater.share_for(1).add_mod(bigint::BigInt(1),
                                      pairing::toy_params().order())));
  ASSERT_EQ(p1.complaints().size(), 1u);
  EXPECT_EQ(p1.complaints()[0], 3u);

  const auto result = p1.finalize();
  EXPECT_EQ(result.qualified, (std::vector<std::uint32_t>{1, 2}));
}

TEST(Dkg, DealerlessThresholdGdh) {
  const std::size_t t = 2, n = 3;
  const auto results = run_honest_dkg(t, n, 304);
  const auto& group = pairing::toy_params();
  const GdhSetup setup = gdh_setup_from_dkg(group, t, n, results[0]);

  const Bytes msg = str_bytes("no dealer was harmed");
  std::vector<GdhSignatureShare> shares;
  for (std::uint32_t j : {1u, 3u}) {
    const GdhKeyShare ks{j, results[j - 1].secret_share};
    auto share = gdh_sign_share(setup, ks, msg);
    EXPECT_TRUE(gdh_verify_share(setup, msg, share));
    shares.push_back(std::move(share));
  }
  const ec::Point sig = gdh_combine_shares(setup, shares);
  EXPECT_TRUE(gdh::verify(group, setup.public_key, msg, sig));
}

TEST(Dkg, DealerlessThresholdIbe) {
  const std::size_t t = 2, n = 3;
  const auto results = run_honest_dkg(t, n, 305);
  const auto& group = pairing::toy_params();
  const ThresholdSetup setup = ibe_setup_from_dkg(group, 32, t, n, results[0]);

  // Each player derives its own key share locally — no dealer.
  HmacDrbg rng(306);
  Bytes m(32);
  rng.fill(m);
  const auto ct = ibe::full_encrypt(setup.params, "alice", m, rng);

  std::vector<DecryptionShare> shares;
  for (std::uint32_t j : {2u, 3u}) {
    const KeyShare ks = ibe_key_share_from_dkg(
        setup, j, results[j - 1].secret_share, "alice");
    EXPECT_TRUE(verify_key_share(setup, "alice", ks));
    shares.push_back(compute_decryption_share(setup, ks, ct.u, false, rng));
  }
  EXPECT_EQ(threshold_full_decrypt(setup, shares, ct), m);
}

TEST(Dkg, SetupConsistencyHoldsForDkgOutputs) {
  const auto results = run_honest_dkg(3, 5, 307);
  const ThresholdSetup setup =
      ibe_setup_from_dkg(pairing::toy_params(), 32, 3, 5, results[0]);
  const std::vector<std::uint32_t> subset = {1, 3, 5};
  EXPECT_TRUE(verify_setup_consistency(setup, subset));
}

TEST(Dkg, InputValidation) {
  HmacDrbg rng(308);
  EXPECT_THROW(DkgParticipant(pairing::toy_params(), 0, 3, 1, rng),
               InvalidArgument);
  EXPECT_THROW(DkgParticipant(pairing::toy_params(), 4, 3, 1, rng),
               InvalidArgument);
  EXPECT_THROW(DkgParticipant(pairing::toy_params(), 2, 3, 0, rng),
               InvalidArgument);
  EXPECT_THROW(DkgParticipant(pairing::toy_params(), 2, 3, 4, rng),
               InvalidArgument);

  DkgParticipant p(pairing::toy_params(), 2, 3, 1, rng);
  EXPECT_THROW(p.share_for(0), InvalidArgument);
  EXPECT_THROW(p.receive_share(2, bigint::BigInt(1)), InvalidArgument);
}

}  // namespace
}  // namespace medcrypt::threshold
