#include "ibe/boneh_franklin.h"

#include <array>

#include "common/error.h"
#include "ec/hash_to_point.h"
#include "ec/jacobian.h"
#include "hash/kdf.h"

namespace medcrypt::ibe {

namespace {

// Shared core of both encryption variants: U = rP and the pairing mask
// g^r. By bilinearity ê(P_pub, Q_ID)^r = ê(r·P_pub, Q_ID), so instead of
// an F_{p^2} exponentiation after the pairing we take one extra
// fixed-base walk before it; rP and r·P_pub stay Jacobian and share a
// single batched inversion.
struct EncryptCore {
  Point u;   // rP
  Fp2 mask;  // ê(P_pub, Q_ID)^r
};

EncryptCore encrypt_core(const SystemParams& params, const Point& q_id,
                         const BigInt& r) {
  const pairing::TatePairing pairing(params.curve());
  if (params.group.generator_table && params.p_pub_table) {
    const std::array<ec::JacPoint, 2> jac{
        params.group.generator_table->mul_jac(r),
        params.p_pub_table->mul_jac(r)};
    std::vector<Point> affine = ec::jac_to_affine_batch(params.curve(), jac);
    return EncryptCore{std::move(affine[0]), pairing.pair(affine[1], q_id)};
  }
  // Hand-assembled params without tables: the pre-table path.
  return EncryptCore{params.generator().mul(r),
                     pairing.pair(params.p_pub, q_id).pow(r)};
}

}  // namespace

Point map_identity(const SystemParams& params, std::string_view identity) {
  // Through the process-wide H1 cache: encryptors and verifiers hit the
  // same Zipf-skewed identity working set over and over. H1(ID) is a
  // pure hash with no revocation dependence, so the epoch is fixed at 0.
  return ec::hash_to_subgroup_cached(params.curve(), "BF.H1",
                                     str_bytes(identity), /*epoch=*/0);
}

Bytes mask_from_g(const Fp2& g, std::size_t n) {
  return hash::expand("BF.H2", g.to_bytes(), n);
}

BigInt derive_r(BytesView sigma, BytesView message, const BigInt& q) {
  // Length-prefix sigma to make the (sigma, message) encoding injective.
  Bytes data;
  data.reserve(4 + sigma.size() + message.size());
  const std::uint32_t len = static_cast<std::uint32_t>(sigma.size());
  for (int i = 0; i < 4; ++i) {
    data.push_back(static_cast<std::uint8_t>(len >> (24 - 8 * i)));
  }
  data.insert(data.end(), sigma.begin(), sigma.end());
  data.insert(data.end(), message.begin(), message.end());
  // H3 must land in [1, q-1]: r = 0 would make U = O and leak sigma.
  BigInt r = hash::hash_to_range("BF.H3", data, q);
  if (r.is_zero()) r = BigInt(1);
  return r;
}

Bytes mask_from_sigma(BytesView sigma, std::size_t n) {
  return hash::expand("BF.H4", sigma, n);
}

// ---------------------------------------------------------------------------
// BasicIdent
// ---------------------------------------------------------------------------

Bytes BasicCiphertext::to_bytes() const {
  return concat(u.to_bytes(), v);
}

BasicCiphertext BasicCiphertext::from_bytes(const SystemParams& params,
                                            BytesView b) {
  const std::size_t point_len = params.curve()->compressed_size();
  if (b.size() != point_len + params.message_len) {
    throw InvalidArgument("BasicCiphertext::from_bytes: wrong length");
  }
  return BasicCiphertext{params.curve()->decompress(b.subspan(0, point_len)),
                         Bytes(b.begin() + point_len, b.end())};
}

BasicCiphertext basic_encrypt(const SystemParams& params,
                              std::string_view identity, BytesView message,
                              RandomSource& rng) {
  if (message.size() != params.message_len) {
    throw InvalidArgument("basic_encrypt: message must be message_len bytes");
  }
  const Point q_id = map_identity(params, identity);
  const BigInt r = BigInt::random_unit(rng, params.order());

  EncryptCore core = encrypt_core(params, q_id, r);
  return BasicCiphertext{
      std::move(core.u),
      xor_bytes(message, mask_from_g(core.mask, params.message_len))};
}

Bytes basic_decrypt(const SystemParams& params, const Point& private_key,
                    const BasicCiphertext& ct) {
  if (ct.v.size() != params.message_len) {
    throw InvalidArgument("basic_decrypt: wrong ciphertext body length");
  }
  const pairing::TatePairing pairing(params.curve());
  const Fp2 g = pairing.pair(ct.u, private_key);
  return xor_bytes(ct.v, mask_from_g(g, params.message_len));
}

// ---------------------------------------------------------------------------
// FullIdent
// ---------------------------------------------------------------------------

Bytes FullCiphertext::to_bytes() const {
  return concat(u.to_bytes(), v, w);
}

FullCiphertext FullCiphertext::from_bytes(const SystemParams& params,
                                          BytesView b) {
  const std::size_t point_len = params.curve()->compressed_size();
  const std::size_t n = params.message_len;
  if (b.size() != point_len + 2 * n) {
    throw InvalidArgument("FullCiphertext::from_bytes: wrong length");
  }
  return FullCiphertext{
      params.curve()->decompress(b.subspan(0, point_len)),
      Bytes(b.begin() + point_len, b.begin() + point_len + n),
      Bytes(b.begin() + point_len + n, b.end())};
}

FullCiphertext full_encrypt(const SystemParams& params,
                            std::string_view identity, BytesView message,
                            RandomSource& rng) {
  if (message.size() != params.message_len) {
    throw InvalidArgument("full_encrypt: message must be message_len bytes");
  }
  const std::size_t n = params.message_len;
  const Point q_id = map_identity(params, identity);

  Bytes sigma(n);
  rng.fill(sigma);
  const BigInt r = derive_r(sigma, message, params.order());

  EncryptCore core = encrypt_core(params, q_id, r);
  return FullCiphertext{std::move(core.u),
                        xor_bytes(sigma, mask_from_g(core.mask, n)),
                        xor_bytes(message, mask_from_sigma(sigma, n))};
}

Bytes full_decrypt_with_mask(const SystemParams& params, const Fp2& g_r,
                             const FullCiphertext& ct) {
  const std::size_t n = params.message_len;
  if (ct.v.size() != n || ct.w.size() != n) {
    throw InvalidArgument("full_decrypt: wrong ciphertext body length");
  }
  const Bytes sigma = xor_bytes(ct.v, mask_from_g(g_r, n));
  const Bytes message = xor_bytes(ct.w, mask_from_sigma(sigma, n));

  // Fujisaki–Okamoto validity check: re-derive r and verify U = rP.
  const BigInt r = derive_r(sigma, message, params.order());
  if (!(params.group.mul_g(r) == ct.u)) {
    throw DecryptionError("FullIdent: ciphertext validity check failed");
  }
  return message;
}

Bytes full_decrypt(const SystemParams& params, const Point& private_key,
                   const FullCiphertext& ct) {
  const pairing::TatePairing pairing(params.curve());
  return full_decrypt_with_mask(params, pairing.pair(ct.u, private_key), ct);
}

}  // namespace medcrypt::ibe
