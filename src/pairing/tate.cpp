#include "pairing/tate.h"

#include <array>
#include <utility>

#include "common/error.h"
#include "ec/jacobian.h"
#include "field/lazy.h"
#include "obs/span.h"

namespace medcrypt::pairing {

using field::Fp;
using field::WideAcc;

namespace {

// The three line-evaluation shapes of the Miller loop, each multiplied
// straight into the accumulator f. On fields the lazy accumulator
// serves (field/lazy.h), the real part threads through one WideAcc so
// every product lands unreduced and each intermediate pays exactly one
// Montgomery reduction; otherwise the historic reduced Fp chain runs.

// Doubling step: L = M(X - Z²x') - 2Y² + i·(2YZ³)·y'.
void mul_dbl_line(Fp2& f, const ec::DblTrace& tr, const Fp& xq,
                  const Fp& yq) {
  Fp im = tr.zp_zsq;
  im *= yq;
  const auto& field = *xq.field();
  if (WideAcc::supports(field)) {
    WideAcc acc(field);
    Fp u = tr.x;
    acc.add_shifted(tr.x);       // u = X - Z²·x'   (one reduction)
    acc.sub_product(tr.z_sq, xq);
    acc.reduce_into(u);
    acc.add_product(tr.m, u);    // re = M·u - 2Y²  (one reduction)
    acc.sub_shifted(tr.y_sq);
    acc.sub_shifted(tr.y_sq);
    acc.reduce_into(u);
    f.mul_line_inplace(u, im);
    return;
  }
  Fp re = tr.z_sq;
  re *= xq;
  re.negate_inplace();
  re += tr.x;
  re *= tr.m;
  re -= tr.y_sq;
  re -= tr.y_sq;
  f.mul_line_inplace(re, im);
}

// Addition step: L = r(x_P - x') - ZH·y_P + i·(ZH)·y'.
void mul_add_line(Fp2& f, const ec::AddTrace& tr, const Point& p,
                  const Fp& xq, const Fp& yq) {
  Fp im = tr.zh;
  im *= yq;
  const auto& field = *xq.field();
  if (WideAcc::supports(field)) {
    Fp u = p.x();
    u -= xq;
    WideAcc acc(field);
    acc.add_product(u, tr.r);    // re = u·r - ZH·y_P (one reduction)
    acc.sub_product(tr.zh, p.y());
    acc.reduce_into(u);
    f.mul_line_inplace(u, im);
    return;
  }
  Fp re = p.x();
  re -= xq;
  re *= tr.r;
  Fp tmp = tr.zh;
  tmp *= p.y();
  re -= tmp;
  f.mul_line_inplace(re, im);
}

// Prepared-step replay: L = (c0 - c1·x') + i·(c2·y').
void mul_replay_line(Fp2& f, const Fp& c0, const Fp& c1, const Fp& c2,
                     const Fp& xq, const Fp& yq) {
  Fp im = c2;
  im *= yq;
  const auto& field = *xq.field();
  if (WideAcc::supports(field)) {
    WideAcc acc(field);
    Fp re = c0;
    acc.add_shifted(c0);         // re = c0 - c1·x' (one reduction)
    acc.sub_product(c1, xq);
    acc.reduce_into(re);
    f.mul_line_inplace(re, im);
    return;
  }
  Fp re = c1;
  re *= xq;
  re.negate_inplace();
  re += c0;
  f.mul_line_inplace(re, im);
}

}  // namespace

TatePairing::TatePairing(std::shared_ptr<const Curve> curve)
    : curve_(std::move(curve)) {
  const auto& field = curve_->field();
  if (!curve_->a().is_one() || !curve_->b().is_zero()) {
    throw InvalidArgument("TatePairing: curve must be y^2 = x^3 + x");
  }
  const BigInt& p = field->modulus();
  if (!(p.bit(0) && p.bit(1))) {
    throw InvalidArgument("TatePairing: field prime must be 3 mod 4");
  }
  // #E(F_p) = p + 1 = h q; the final exponentiation tail is (p+1)/q.
  BigInt q, r;
  BigInt::divmod(p + BigInt(1), curve_->order(), exp_tail_, r);
  if (!r.is_zero()) {
    throw InvalidArgument("TatePairing: order must divide p + 1");
  }
  // Window schedule of the tail exponent, computed once here instead of
  // per pairing call (h >= 4, so there is at least one nonzero window).
  const std::size_t nwindows = (exp_tail_.bit_length() + 3) / 4;
  tail_digits_.reserve(nwindows);
  for (std::size_t w = nwindows; w-- > 0;) {
    unsigned d = 0;
    for (int i = 3; i >= 0; --i) {
      d = (d << 1) | (exp_tail_.bit(w * 4 + i) ? 1u : 0u);
    }
    tail_digits_.push_back(static_cast<std::uint8_t>(d));
  }
}

Fp2 TatePairing::miller(const Point& p, const Point& q) const {
  obs::Span span(obs::Stage::kPairingMiller);
  const auto& field = curve_->field();

  // Distorted coordinates of Q: x' = -x(Q) in F_p, y' = i * y(Q).
  const Fp xq = -q.x();
  const Fp& yq = q.y();

  // Inversion-free Miller loop: T is tracked in Jacobian coordinates and
  // the line functions are evaluated from the doubling/addition
  // intermediates, scaled by F_p factors that the final exponentiation
  // erases (see ec/jacobian.h for the derivations). Compound in-place
  // ops keep every temporary in fixed-limb stack storage.
  Fp2 f = Fp2::one(field);
  ec::JacPoint t = ec::jac_from_affine(p);
  const BigInt& order = curve_->order();

  for (std::size_t i = order.bit_length() - 1; i-- > 0;) {
    // Doubling step: f <- f^2 * l_{T,T}(Q'); T <- 2T.
    f.square_inplace();
    const bool have_line = !t.inf && !t.y.is_zero();
    ec::DblTrace dbl_trace;
    t = ec::jac_dbl(*curve_, t, have_line ? &dbl_trace : nullptr);
    if (have_line) {
      mul_dbl_line(f, dbl_trace, xq, yq);
    }

    if (order.bit(i)) {
      // Addition step: f <- f * l_{T,P}(Q'); T <- T + P.
      if (t.inf) {
        t = ec::jac_from_affine(p);
      } else {
        ec::AddTrace add_trace;
        t = ec::jac_add_mixed(*curve_, t, p, &add_trace);
        if (!add_trace.vertical) {
          mul_add_line(f, add_trace, p, xq, yq);
        }
        // Vertical line (T = -P): lives in F_p, erased by the final
        // exponentiation — skip.
      }
    }
  }
  return f;
}

Fp2 TatePairing::tail_power(const Fp2& powered) const {
  // Windowed tail exponentiation powered^((p+1)/q) over the schedule
  // precomputed at construction; the 15-entry power table lives on the
  // stack.
  std::array<Fp2, 16> table;
  table[1] = powered;
  for (std::size_t i = 2; i < table.size(); ++i) {
    table[i] = table[i - 1];
    table[i].mul_inplace(powered);
  }
  Fp2 acc;
  bool started = false;
  for (const std::uint8_t d : tail_digits_) {
    if (started) {
      for (int i = 0; i < 4; ++i) acc.square_inplace();
    }
    if (d != 0) {
      if (started) {
        acc.mul_inplace(table[d]);
      } else {
        acc = table[d];
        started = true;
      }
    }
  }
  if (!started) return Fp2::one(curve_->field());
  return acc;
}

Fp2 TatePairing::final_exponentiation(const Fp2& f) const {
  obs::Span span(obs::Stage::kPairingFinalExp);
  // f^((p^2-1)/q) = (f^(p-1))^((p+1)/q); f^p is the conjugate, so
  // f^(p-1) = conj(f) / f.
  Fp2 powered = f.conjugate();
  powered.mul_inplace(f.inverse());
  return tail_power(powered);
}

void TatePairing::final_exponentiation_batch(std::span<Fp2> fs) const {
  if (fs.empty()) return;
  obs::Span span(obs::Stage::kPairingFinalExpBatch);
  // The f^(p-1) = conj(f)/f step is the batch-shareable part: one
  // Montgomery-trick inversion replaces |fs| Fermat powers. The tail
  // powers cannot be shared — each element is a distinct output.
  std::vector<Fp2> invs(fs.begin(), fs.end());
  field::batch_inverse(invs);
  for (std::size_t i = 0; i < fs.size(); ++i) {
    Fp2 powered = fs[i].conjugate();
    powered.mul_inplace(invs[i]);
    fs[i] = tail_power(powered);
  }
}

void PreparedPairing::wipe() {
  for (Step& step : steps_) {
    step.c0.wipe();
    step.c1.wipe();
    step.c2.wipe();
  }
  steps_.clear();
  steps_.shrink_to_fit();
  curve_.reset();
  infinity_ = false;
}

PreparedPairing TatePairing::prepare(const Point& p) const {
  if (p.curve() != curve_) {
    throw InvalidArgument("TatePairing::prepare: point from another curve");
  }
  PreparedPairing out;
  out.curve_ = curve_;
  if (p.is_infinity()) {
    out.infinity_ = true;
    return out;
  }
  obs::Span span(obs::Stage::kPairingPrepare);

  // Walk the exact control flow of miller(), but instead of evaluating
  // the line functions at a concrete Q', record their coefficients:
  //   doubling  L = (M·X - 2Y^2) - (M·Z^2)·x' + i·(2YZ^3)·y'
  //   addition  L = (r·x_P - ZH·y_P) - r·x'   + i·(ZH)·y'
  // so each recorded step is L = (c0 - c1·x') + i·(c2·y').
  using Op = PreparedPairing::Op;
  ec::JacPoint t = ec::jac_from_affine(p);
  const BigInt& order = curve_->order();
  out.steps_.reserve(2 * order.bit_length());

  for (std::size_t i = order.bit_length() - 1; i-- > 0;) {
    out.steps_.push_back({Op::kSquare, {}, {}, {}});
    const bool have_line = !t.inf && !t.y.is_zero();
    ec::DblTrace dbl_trace;
    t = ec::jac_dbl(*curve_, t, have_line ? &dbl_trace : nullptr);
    if (have_line) {
      out.steps_.push_back({Op::kMulLine,
                            dbl_trace.m * dbl_trace.x - dbl_trace.y_sq.dbl(),
                            dbl_trace.m * dbl_trace.z_sq, dbl_trace.zp_zsq});
    }

    if (order.bit(i)) {
      if (t.inf) {
        t = ec::jac_from_affine(p);
      } else {
        ec::AddTrace add_trace;
        t = ec::jac_add_mixed(*curve_, t, p, &add_trace);
        if (!add_trace.vertical) {
          out.steps_.push_back(
              {Op::kMulLine, add_trace.r * p.x() - add_trace.zh * p.y(),
               add_trace.r, add_trace.zh});
        }
      }
    }
  }
  return out;
}

Fp2 TatePairing::miller_with(const PreparedPairing& prepared,
                             const Point& q) const {
  if (prepared.empty()) {
    throw InvalidArgument("TatePairing::pair_with: empty prepared argument");
  }
  if (prepared.curve_ != curve_ || q.curve() != curve_) {
    throw InvalidArgument("TatePairing::pair_with: points from another curve");
  }
  const auto& field = curve_->field();
  if (prepared.infinity_ || q.is_infinity()) return Fp2::one(field);

  // The step replay is this path's Miller loop; it lands in the same
  // stage histogram as the direct evaluation in miller().
  obs::Span span(obs::Stage::kPairingMiller);
  const Fp xq = -q.x();
  const Fp& yq = q.y();
  Fp2 f = Fp2::one(field);
  for (const PreparedPairing::Step& step : prepared.steps_) {
    if (step.op == PreparedPairing::Op::kSquare) {
      f.square_inplace();
    } else {
      mul_replay_line(f, step.c0, step.c1, step.c2, xq, yq);
    }
  }
  if (f.is_zero()) {
    throw Error("TatePairing: degenerate Miller value");
  }
  return f;
}

Fp2 TatePairing::pair_with(const PreparedPairing& prepared,
                           const Point& q) const {
  return final_exponentiation(miller_with(prepared, q));
}

std::vector<Fp2> TatePairing::pair_with_many(
    std::span<const PreparedPairing* const> prepared,
    std::span<const Point* const> qs) const {
  if (prepared.size() != qs.size()) {
    throw InvalidArgument("TatePairing::pair_with_many: size mismatch");
  }
  std::vector<Fp2> out;
  out.reserve(prepared.size());
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    if (prepared[i] == nullptr || qs[i] == nullptr) {
      throw InvalidArgument("TatePairing::pair_with_many: null entry");
    }
    out.push_back(miller_with(*prepared[i], *qs[i]));
  }
  final_exponentiation_batch(out);
  return out;
}

Fp2 TatePairing::pair_many(std::span<const PairTerm> terms) const {
  const auto& field = curve_->field();

  // A raw term drives a live Jacobian chain, exactly as miller() does;
  // a prepared term replays its recorded program. Both kinds contribute
  // their line evaluations to ONE shared accumulator, so the per-bit
  // f² squaring is paid once for the whole product: with F = ∏ f_i,
  // each bit's f_i ← f_i²·L_i collapses to F ← F²·∏L_i.
  struct RawState {
    const Point* p;
    ec::JacPoint t;
    Fp xq;
    Fp yq;
  };
  struct PrepState {
    const PreparedPairing::Step* cur;
    const PreparedPairing::Step* end;
    Fp xq;
    Fp yq;
  };
  std::vector<RawState> raws;
  std::vector<PrepState> preps;
  for (const PairTerm& term : terms) {
    if (term.q == nullptr || (term.p == nullptr) == (term.prepared == nullptr)) {
      throw InvalidArgument(
          "TatePairing::pair_many: each term needs q and exactly one of "
          "p/prepared");
    }
    if (term.q->curve() != curve_) {
      throw InvalidArgument("TatePairing::pair_many: point from another curve");
    }
    if (term.prepared != nullptr) {
      if (term.prepared->empty()) {
        throw InvalidArgument("TatePairing::pair_many: empty prepared term");
      }
      if (term.prepared->curve_ != curve_) {
        throw InvalidArgument(
            "TatePairing::pair_many: prepared term from another curve");
      }
      if (term.prepared->infinity_ || term.q->is_infinity()) continue;
      const auto* steps = term.prepared->steps_.data();
      preps.push_back(PrepState{steps, steps + term.prepared->steps_.size(),
                                -term.q->x(), term.q->y()});
    } else {
      if (term.p->curve() != curve_) {
        throw InvalidArgument(
            "TatePairing::pair_many: point from another curve");
      }
      if (term.p->is_infinity() || term.q->is_infinity()) continue;
      raws.push_back(
          RawState{term.p, ec::jac_from_affine(*term.p), -term.q->x(),
                   term.q->y()});
    }
  }
  if (raws.empty() && preps.empty()) return Fp2::one(field);

  obs::Span span(obs::Stage::kPairingMiller);
  Fp2 f = Fp2::one(field);
  const BigInt& order = curve_->order();
  for (std::size_t i = order.bit_length() - 1; i-- > 0;) {
    f.square_inplace();

    for (RawState& rs : raws) {
      // Doubling step of this factor (see miller() for the derivation).
      const bool have_line = !rs.t.inf && !rs.t.y.is_zero();
      ec::DblTrace dbl_trace;
      rs.t = ec::jac_dbl(*curve_, rs.t, have_line ? &dbl_trace : nullptr);
      if (have_line) {
        mul_dbl_line(f, dbl_trace, rs.xq, rs.yq);
      }
      if (order.bit(i)) {
        if (rs.t.inf) {
          rs.t = ec::jac_from_affine(*rs.p);
        } else {
          ec::AddTrace add_trace;
          rs.t = ec::jac_add_mixed(*curve_, rs.t, *rs.p, &add_trace);
          if (!add_trace.vertical) {
            mul_add_line(f, add_trace, *rs.p, rs.xq, rs.yq);
          }
        }
      }
    }

    for (PrepState& ps : preps) {
      // Each prepared program records exactly one kSquare marker per
      // order bit (the shared squaring above replaces it), followed by
      // that bit's line steps.
      ++ps.cur;  // the kSquare marker
      while (ps.cur != ps.end &&
             ps.cur->op == PreparedPairing::Op::kMulLine) {
        mul_replay_line(f, ps.cur->c0, ps.cur->c1, ps.cur->c2, ps.xq,
                        ps.yq);
        ++ps.cur;
      }
    }
  }
  if (f.is_zero()) {
    throw Error("TatePairing: degenerate Miller value");
  }
  span.finish();  // final_exponentiation times itself
  return final_exponentiation(f);
}

Fp2 TatePairing::pair(const Point& p, const Point& q) const {
  if (p.curve() != curve_ || q.curve() != curve_) {
    throw InvalidArgument("TatePairing::pair: points from another curve");
  }
  const auto& field = curve_->field();
  if (p.is_infinity() || q.is_infinity()) return Fp2::one(field);

  const Fp2 f = miller(p, q);
  if (f.is_zero()) {
    // Degenerate Miller value can only arise from special positions of
    // P vs Q (e.g. Q' on a tangent of the Miller chain); re-randomizing
    // is the textbook fix, but for the distorted supersingular pairing
    // with both inputs in G1 it cannot occur. Guard anyway.
    throw Error("TatePairing: degenerate Miller value");
  }
  return final_exponentiation(f);
}

}  // namespace medcrypt::pairing
