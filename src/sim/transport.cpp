#include "sim/transport.h"

namespace medcrypt::sim {

void Transport::send_to_server(std::uint64_t bytes) {
  stats_.to_server.record(bytes);
  if (clock_ != nullptr) clock_->advance_ns(latency_.delay_for(bytes));
}

void Transport::send_to_client(std::uint64_t bytes) {
  stats_.to_client.record(bytes);
  if (clock_ != nullptr) clock_->advance_ns(latency_.delay_for(bytes));
}

namespace {

void count_traced_frame(const FrameHeader& frame) {
  if (!frame.trace.sampled()) return;
  static obs::Counter& traced =
      obs::registry().counter("sim.link.traced_frames");
  traced.add();
}

}  // namespace

void Transport::send_to_server(std::uint64_t payload_bytes,
                               const FrameHeader& frame) {
  count_traced_frame(frame);
  send_to_server(payload_bytes + FrameHeader::kWireSize);
}

void Transport::send_to_client(std::uint64_t payload_bytes,
                               const FrameHeader& frame) {
  count_traced_frame(frame);
  send_to_client(payload_bytes + FrameHeader::kWireSize);
}

}  // namespace medcrypt::sim
