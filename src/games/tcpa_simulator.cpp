#include "games/tcpa_simulator.h"

#include <set>

#include "common/error.h"
#include "shamir/shamir.h"

namespace medcrypt::games {

using bigint::BigInt;
using ec::Point;

std::vector<Point> simulate_verification_keys(
    const pairing::ParamSet& group, std::size_t t, std::size_t n,
    std::span<const CorruptedShare> corrupted, const Point& p_pub) {
  if (t < 1 || t > n) {
    throw InvalidArgument("simulate_verification_keys: need 1 <= t <= n");
  }
  if (corrupted.size() != t - 1) {
    throw InvalidArgument(
        "simulate_verification_keys: need exactly t-1 corrupted shares");
  }
  std::set<std::uint32_t> corrupt_set;
  for (const CorruptedShare& c : corrupted) {
    if (c.index == 0 || c.index > n || !corrupt_set.insert(c.index).second) {
      throw InvalidArgument("simulate_verification_keys: bad corrupted index");
    }
  }

  const BigInt& q = group.order();

  // Interpolation node set {0} ∪ S. shamir::lagrange_coefficient requires
  // nonzero indices, so we inline the Lagrange formula over arbitrary
  // abscissae here (x_0 = 0 for P_pub, x_j = index for the shares).
  std::vector<BigInt> nodes;  // abscissae
  nodes.push_back(BigInt{});
  for (const CorruptedShare& c : corrupted) {
    nodes.push_back(BigInt(static_cast<std::uint64_t>(c.index)));
  }

  const auto lagrange_at = [&](std::size_t which, const BigInt& x) {
    // λ_which(x) = Π_{m != which} (x - x_m) / (x_which - x_m)  (mod q)
    BigInt num(std::uint64_t{1}), den(std::uint64_t{1});
    for (std::size_t m = 0; m < nodes.size(); ++m) {
      if (m == which) continue;
      num = num.mul_mod(x.mod(q).sub_mod(nodes[m].mod(q), q), q);
      den = den.mul_mod(nodes[which].mod(q).sub_mod(nodes[m].mod(q), q), q);
    }
    return num.mul_mod(den.mod_inverse(q), q);
  };

  std::vector<Point> keys;
  keys.reserve(n);
  for (std::uint32_t i = 1; i <= n; ++i) {
    if (corrupt_set.contains(i)) {
      // For corrupted players the key is directly c_i·P.
      for (const CorruptedShare& c : corrupted) {
        if (c.index == i) {
          keys.push_back(group.mul_g(c.value.mod(q)));
          break;
        }
      }
      continue;
    }
    const BigInt x(static_cast<std::uint64_t>(i));
    Point acc = p_pub.mul(lagrange_at(0, x));
    for (std::size_t j = 0; j < corrupted.size(); ++j) {
      const BigInt coeff =
          lagrange_at(j + 1, x).mul_mod(corrupted[j].value.mod(q), q);
      acc += group.mul_g(coeff);
    }
    keys.push_back(acc);
  }
  return keys;
}

threshold::ThresholdSetup simulate_threshold_setup(
    const pairing::ParamSet& group, std::size_t message_len, std::size_t t,
    std::size_t n, std::span<const CorruptedShare> corrupted,
    const Point& p_pub) {
  threshold::ThresholdSetup setup;
  setup.params.group = group;
  setup.params.p_pub = p_pub;
  setup.params.message_len = message_len;
  setup.threshold = t;
  setup.players = n;
  setup.verification_keys =
      simulate_verification_keys(group, t, n, corrupted, p_pub);
  return setup;
}

threshold::KeyShare simulate_corrupted_key_share(
    const threshold::ThresholdSetup& setup, const CorruptedShare& share,
    std::string_view identity) {
  return threshold::KeyShare{
      share.index,
      ibe::map_identity(setup.params, identity).mul(share.value)};
}

}  // namespace medcrypt::games
