// Edge-case tests that close gaps left by the per-module suites:
// non-subgroup points, misbehaving mediators, cross-dealer confusion,
// and API contract violations.
#include <gtest/gtest.h>

#include "common/error.h"
#include "hash/drbg.h"
#include "mediated/mediated_gdh.h"
#include "mediated/mediated_ibe.h"
#include "pairing/params.h"
#include "threshold/threshold_ibe.h"

namespace medcrypt {
namespace {

using bigint::BigInt;
using hash::HmacDrbg;

TEST(Edge, PointOutsideSubgroupDetected) {
  // The tiny curve (order 104 = 8 * 13) has low-order points; they must
  // fail in_subgroup and GDH verification must reject such signatures.
  auto f = field::PrimeField::make(BigInt(103));
  auto c = ec::Curve::make(f, f->one(), f->zero(), BigInt(13), BigInt(8));
  bool found_low_order = false;
  for (std::uint64_t xv = 0; xv < 103 && !found_low_order; ++xv) {
    const auto x = f->from_u64(xv);
    const auto rhs = c->rhs(x);
    if (!rhs.is_square()) continue;
    const auto p = c->point(x, rhs.sqrt());
    if (!p.is_infinity() && !p.in_subgroup()) {
      found_low_order = true;
      EXPECT_FALSE(p.mul(BigInt(13)).is_infinity());
    }
  }
  EXPECT_TRUE(found_low_order);
}

TEST(Edge, MisbehavingSemDetectedByGdhUser) {
  // A SEM that installed the wrong key half produces a half-signature
  // that fails the user's final verification: the user must throw, not
  // release a bad signature.
  HmacDrbg rng(800);
  const auto& group = pairing::toy_params();
  auto revocations = std::make_shared<mediated::RevocationList>();
  mediated::GdhMediator sem(group, revocations);

  const BigInt x_user = BigInt::random_unit(rng, group.order());
  const BigInt x_sem = BigInt::random_unit(rng, group.order());
  const ec::Point pub = group.generator.mul(x_user.add_mod(x_sem, group.order()));
  // Install a DIFFERENT half than the one the public key was built from.
  sem.install_key("alice", BigInt::random_unit(rng, group.order()));
  mediated::MediatedGdhUser alice(group, "alice", x_user, pub);
  EXPECT_THROW(alice.sign(str_bytes("m"), sem), Error);
}

TEST(Edge, CrossDealerVerificationKeysRejected) {
  // Key shares from dealer A must not verify against dealer B's setup.
  HmacDrbg rng(801);
  threshold::ThresholdDealer dealer_a(pairing::toy_params(), 32, 2, 3, rng);
  threshold::ThresholdDealer dealer_b(pairing::toy_params(), 32, 2, 3, rng);
  const auto shares_a = dealer_a.extract_shares("alice");
  EXPECT_TRUE(verify_key_share(dealer_a.setup(), "alice", shares_a[0]));
  EXPECT_FALSE(verify_key_share(dealer_b.setup(), "alice", shares_a[0]));
}

TEST(Edge, SetupConsistencyRejectsForeignKeys) {
  HmacDrbg rng(802);
  threshold::ThresholdDealer dealer(pairing::toy_params(), 32, 2, 3, rng);
  threshold::ThresholdSetup tampered = dealer.setup();
  tampered.verification_keys[1] =
      tampered.verification_keys[1] + tampered.params.generator();
  const std::vector<std::uint32_t> subset = {1, 2};
  EXPECT_FALSE(verify_setup_consistency(tampered, subset));
}

TEST(Edge, BigIntContractViolations) {
  EXPECT_THROW(BigInt(-5).to_bytes_be(), InvalidArgument);
  EXPECT_THROW(BigInt(-5).to_u64(), InvalidArgument);
  EXPECT_THROW(BigInt::from_hex("10000000000000000").to_u64(),
               InvalidArgument);
  EXPECT_THROW(BigInt(2).pow_mod(BigInt(-1), BigInt(5)), InvalidArgument);
  EXPECT_THROW(BigInt(2).pow_mod(BigInt(1), BigInt(0)), InvalidArgument);
  EXPECT_EQ(BigInt(2).pow_mod(BigInt(100), BigInt(1)), BigInt(0));
}

TEST(Edge, Fp2NegativeExponentThrows) {
  auto f = field::PrimeField::make(BigInt(103));
  const field::Fp2 x(f->from_u64(2), f->from_u64(3));
  EXPECT_THROW(x.pow(BigInt(-1)), InvalidArgument);
}

TEST(Edge, DefaultConstructedValueObjectsThrowOnUse) {
  field::Fp fp;
  auto f = field::PrimeField::make(BigInt(103));
  EXPECT_THROW(fp + f->one(), InvalidArgument);
  EXPECT_THROW(fp.inverse(), InvalidArgument);
  EXPECT_THROW(fp.to_bigint(), InvalidArgument);

  ec::Point p;
  EXPECT_THROW(p.mul(BigInt(2)), InvalidArgument);
  EXPECT_THROW(p.to_bytes(), InvalidArgument);
  EXPECT_THROW(-p, InvalidArgument);
}

TEST(Edge, MediatorRequiresRevocationList) {
  HmacDrbg rng(803);
  ibe::Pkg pkg(pairing::toy_params(), 32, rng);
  EXPECT_THROW(mediated::IbeMediator(pkg.params(), nullptr), InvalidArgument);
}

TEST(Edge, IdentityWithUnusualBytesWorks) {
  // Identities are arbitrary byte strings: long, empty, or with
  // separators that might confuse naive encodings.
  HmacDrbg rng(804);
  ibe::Pkg pkg(pairing::toy_params(), 32, rng);
  auto revocations = std::make_shared<mediated::RevocationList>();
  mediated::IbeMediator sem(pkg.params(), revocations);
  for (const std::string& id :
       {std::string(""), std::string("a|b|c"), std::string(500, 'x'),
        std::string("\x01\x02\x00x", 4)}) {
    auto user = enroll_ibe_user(pkg, sem, id, rng);
    Bytes m(32);
    rng.fill(m);
    const auto ct = ibe::full_encrypt(pkg.params(), id, m, rng);
    EXPECT_EQ(user.decrypt(ct, sem), m);
    revocations->revoke(id);
    EXPECT_THROW(user.decrypt(ct, sem), RevokedError);
  }
}

TEST(Edge, PairingOfPointWithItsNegative) {
  // ê(P, -P) = ê(P, P)^{-1}; combined they cancel.
  const auto& params = pairing::toy_params();
  const pairing::TatePairing e(params.curve);
  const auto& p = params.generator;
  const auto g = e.pair(p, p);
  const auto g_neg = e.pair(p, -p);
  EXPECT_TRUE((g * g_neg).is_one());
}

TEST(Edge, PairingSelfConsistencyAtOrderBoundary) {
  // ê((q-1)P, P) = ê(P, P)^{q-1} = ê(P, P)^{-1}.
  const auto& params = pairing::toy_params();
  const pairing::TatePairing e(params.curve);
  const auto& p = params.generator;
  const BigInt q_minus_1 = params.order() - BigInt(1);
  EXPECT_EQ(e.pair(p.mul(q_minus_1), p), e.pair(p, p).pow(q_minus_1));
  EXPECT_TRUE((e.pair(p.mul(q_minus_1), p) * e.pair(p, p)).is_one());
}

}  // namespace
}  // namespace medcrypt
