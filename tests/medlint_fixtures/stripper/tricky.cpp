// Lexer regression fixtures: every banned pattern below sits inside a
// literal or a comment; the only real violation is the memcmp at the end.
const char* kRaw = R"(memcmp(a, b, n) and std::mt19937 are banned)";
const char* kCustom = R"xy(rand() and a tricky )" inside)xy";
const char* kEscaped = "quoted \"memcmp(a, b, n)\" stays quoted";
const char* kContinued = "line one \
std::random_device continued inside a string";
// comment continued with a backslash: the next line is still comment \
int not_code = std::mt19937_is_still_commented_out;

int real_violation(const void* a, const void* b) {
  return memcmp(a, b, 16);
}
