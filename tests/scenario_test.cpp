// Tests for the capacity scenario harness: accounting invariants across
// all four workload shapes, SLO wiring, exemplar-trace resolution, and
// the machine-readable capacity report (toy params keep the whole file
// a smoke-scale run; tools/capacity_report.py re-checks the same
// invariants on the full-size CI artifact).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "pairing/params.h"
#include "sim/scenario.h"

namespace {

using namespace medcrypt;

sim::ScenarioConfig tiny_config() {
  sim::ScenarioConfig cfg;
  cfg.group = &pairing::toy_params();
  cfg.users = 4;
  cfg.ops = 16;
  cfg.batch = 4;
  cfg.zipf_population = 8;
  return cfg;
}

TEST(Scenario, NamesAreStableAndUnknownNamesThrow) {
  const auto& names = sim::ScenarioRunner::scenario_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "steady");
  EXPECT_EQ(names[3], "failover");
  sim::ScenarioRunner runner(tiny_config());
  EXPECT_THROW((void)runner.run("rush_hour"), InvalidArgument);
}

TEST(Scenario, SteadyRunKeepsAccountingInvariants) {
  sim::ScenarioRunner runner(tiny_config());
  const sim::ScenarioResult r = runner.run("steady");
  EXPECT_EQ(r.name, "steady");
  EXPECT_GT(r.requests, 0u);
  // Every request resolves exactly one way: served, denied, or failed
  // without a successful retry (steady has no failures at all).
  EXPECT_EQ(r.ok + r.denied, r.requests);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.denied, 0u);
  // Batches issue more tokens than requests.
  EXPECT_GT(r.tokens, r.requests);
  EXPECT_GT(r.wall_s, 0.0);
  EXPECT_GT(r.tokens_per_s, 0.0);
  EXPECT_LE(r.p50_us, r.p99_us);
  EXPECT_LE(r.p99_us, r.max_us);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
}

TEST(Scenario, SloReportsAreWiredPerScenario) {
  sim::ScenarioRunner runner(tiny_config());
  const sim::ScenarioResult r = runner.run("steady");
  EXPECT_EQ(r.latency_slo.name, "steady_latency");
  EXPECT_EQ(r.availability_slo.name, "steady_availability");
  EXPECT_EQ(r.availability_slo.total, r.ok + r.failed);
  EXPECT_DOUBLE_EQ(r.availability_slo.availability, 1.0);
  // Both SLOs carry the default fast/slow burn window pair.
  ASSERT_EQ(r.latency_slo.burns.size(), 2u);
  EXPECT_EQ(r.latency_slo.burns[0].window, "5m");
  EXPECT_EQ(r.latency_slo.burns[1].window, "1h");
}

TEST(Scenario, RevocationStormDeniesButNeverFails) {
  sim::ScenarioRunner runner(tiny_config());
  const sim::ScenarioResult r = runner.run("revocation_storm");
  EXPECT_EQ(r.ok + r.denied, r.requests);
  // Half the population is revoked mid-run: denials must show up, and
  // they are intended behavior — not availability failures.
  EXPECT_GT(r.denied, 0u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
}

TEST(Scenario, FailoverBurnsAvailabilityThenRecovers) {
  sim::ScenarioRunner runner(tiny_config());
  const sim::ScenarioResult r = runner.run("failover");
  EXPECT_EQ(r.ok + r.denied, r.requests);
  // The dark primary costs failed first attempts, each retried against
  // the standby.
  EXPECT_GT(r.failed, 0u);
  EXPECT_EQ(r.retries, r.failed);
  EXPECT_LT(r.availability, 1.0);
  EXPECT_GT(r.availability, 0.0);
  EXPECT_GT(r.availability_slo.budget_consumed, 0.0);
}

TEST(Scenario, AllScenariosRunBackToBackOnOneRunner) {
  sim::ScenarioRunner runner(tiny_config());
  for (const std::string& name : sim::ScenarioRunner::scenario_names()) {
    const sim::ScenarioResult r = runner.run(name);
    EXPECT_EQ(r.name, name);
    EXPECT_GT(r.requests, 0u) << name;
    EXPECT_EQ(r.ok + r.denied, r.requests) << name;
    EXPECT_GE(r.availability, 0.0) << name;
    EXPECT_LE(r.availability, 1.0) << name;
  }
}

TEST(Scenario, MultiThreadedRunKeepsInvariants) {
  sim::ScenarioConfig cfg = tiny_config();
  cfg.threads = 2;
  cfg.ops = 24;
  sim::ScenarioRunner runner(cfg);
  const sim::ScenarioResult r = runner.run("steady");
  EXPECT_EQ(r.threads, 2);
  EXPECT_GT(r.requests, 0u);
  EXPECT_EQ(r.ok + r.denied, r.requests);
}

TEST(Scenario, CapacityReportJsonCarriesSchemaAndRows) {
  sim::ScenarioRunner runner(tiny_config());
  std::vector<sim::ScenarioResult> results;
  results.push_back(runner.run("steady"));
  results.push_back(runner.run("failover"));
  const std::string report =
      sim::capacity_report_json(results, runner.config());
  EXPECT_NE(report.find("medcrypt.capacity_report/v1"), std::string::npos);
  EXPECT_NE(report.find("\"steady\""), std::string::npos);
  EXPECT_NE(report.find("\"failover\""), std::string::npos);
  EXPECT_NE(report.find("\"latency\""), std::string::npos);
  EXPECT_NE(report.find("\"availability\""), std::string::npos);
  EXPECT_NE(report.find("\"burn\""), std::string::npos);
  EXPECT_NE(report.find("\"obs_enabled\""), std::string::npos);
}

#if MEDCRYPT_OBS_ENABLED

TEST(Scenario, ExemplarsResolveToCompleteSpanBreakdowns) {
  sim::ScenarioRunner runner(tiny_config());
  const sim::ScenarioResult r = runner.run("steady");
  // The harness arms every 4th request deterministically, so the
  // latency histogram's exemplar slots fill and each one resolves
  // against the trace ring.
  ASSERT_FALSE(r.exemplars.empty());
  ASSERT_FALSE(r.exemplar_traces.empty());
  for (const sim::TraceDump& dump : r.exemplar_traces) {
    EXPECT_EQ(dump.pipeline, "scenario.request");
    EXPECT_GT(dump.total_us, 0.0);
    // A resolved p99 trace is causal: it carries the stage cuts of the
    // crypto work behind the sample, not just the number.
    EXPECT_FALSE(dump.stages.empty());
    bool matches_exemplar = false;
    for (const sim::ExemplarRef& ex : r.exemplars) {
      if (ex.trace_id == dump.trace_id) matches_exemplar = true;
    }
    EXPECT_TRUE(matches_exemplar);
  }
}

#endif  // MEDCRYPT_OBS_ENABLED

}  // namespace
