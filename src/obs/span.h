// Scoped tracing for the crypto pipelines.
//
// Span(Stage) times one stage: construction stamps the clock, the
// destructor records the elapsed nanoseconds into the registry's
// per-stage histogram (O(1) array lookup, relaxed atomics — no locks,
// no allocation). If a sampled TraceScope is active on this thread, the
// span also appends a StageRec to the in-flight trace, giving a
// per-stage breakdown of one concrete pipeline execution.
//
// TraceScope brackets a whole pipeline (e.g. one token issuance). It is
// sampled — by default 1 execution in 16 carries a trace — so the common
// case costs one counter bump and a branch. The sampled case fills a
// fixed-capacity TraceData on this thread's stack frame and pushes it
// into the registry's ring of recent traces on scope exit (the only
// lock, taken once per *sampled* pipeline, never per span).
//
// Neither type is copyable or movable: they pin a scope, nothing else.
#pragma once

#include <cstring>

#include "obs/obs.h"
#include "obs/registry.h"

namespace medcrypt::obs {

#if MEDCRYPT_OBS_ENABLED

class TraceScope;

namespace detail {
// The trace being assembled on this thread, if any. Spans append to it;
// nesting TraceScopes is not supported (inner scopes see a live pointer
// and demote themselves to plain counting).
inline thread_local TraceData* t_current_trace = nullptr;
}  // namespace detail

class Span {
 public:
  // The kill switch is consulted once, at construction: a span that
  // starts disarmed stays disarmed (start_ == 0 sentinel), so flipping
  // set_enabled mid-span never records a garbage duration.
  explicit Span(Stage stage)
      : stage_(stage), start_(enabled() ? now_ns() : 0) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the timed window now instead of at scope exit; use when the
  /// scope has trailing work that should not be measured. Idempotent
  /// (the destructor becomes a no-op).
  void finish() {
    if (start_ == 0) return;
    const std::uint64_t dur = now_ns() - start_;
    registry().stage_histogram(stage_).record(dur);
    if (TraceData* trace = detail::t_current_trace) {
      if (trace->stage_count < TraceData::kMaxStages) {
        trace->stages[trace->stage_count++] =
            TraceData::StageRec{stage_, start_ - trace->start_ns, dur};
      } else {
        ++trace->dropped;
      }
    }
    start_ = 0;
  }

  ~Span() { finish(); }

 private:
  Stage stage_;
  std::uint64_t start_;
};

class TraceScope {
 public:
  /// Sentinel for `sample_shift`: use the process-wide default set via
  /// obs::set_trace_sample_shift (4 → 1/16 out of the box).
  static constexpr unsigned kUseGlobalShift = ~0u;

  /// `pipeline` must be a string literal (stored by pointer in the ring).
  /// `sample_shift`: trace 1 execution in 2^shift; kUseGlobalShift
  /// defers to the global default. An armed scope allocates a fresh
  /// trace id, visible via TraceContext::current() until scope exit.
  explicit TraceScope(const char* pipeline,
                      unsigned sample_shift = kUseGlobalShift) {
    if (!enabled() || detail::t_current_trace != nullptr) return;
    if (sample_shift == kUseGlobalShift) sample_shift = trace_sample_shift();
    thread_local std::uint64_t tick = 0;
    if ((tick++ & ((std::uint64_t{1} << sample_shift) - 1)) != 0) return;
    arm(pipeline, next_trace_id(), /*parent_id=*/0);
  }

  /// Continues a trace across a hop: arms if and only if the upstream
  /// execution was sampled (no re-sampling — a request is traced end to
  /// end or not at all), allocating a child trace id whose parent_id
  /// links back to the caller's segment. This is the constructor a
  /// networked SEM daemon uses after decoding the frame's trace field.
  TraceScope(const char* pipeline, const TraceContext& parent) {
    if (!enabled() || detail::t_current_trace != nullptr || !parent.sampled())
      return;
    arm(pipeline, next_trace_id(), parent.trace_id);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (!armed_) return;
    detail::t_current_trace = nullptr;
    detail::t_trace_id = 0;
    trace_.total_ns = now_ns() - trace_.start_ns;
    registry().push_trace(trace_);
  }

 private:
  void arm(const char* pipeline, std::uint64_t id, std::uint64_t parent_id) {
    trace_.pipeline = pipeline;
    trace_.trace_id = id;
    trace_.parent_id = parent_id;
    trace_.start_ns = now_ns();
    detail::t_current_trace = &trace_;
    detail::t_trace_id = id;
    armed_ = true;
  }

  TraceData trace_{};
  bool armed_ = false;
};

/// Attaches numeric baggage to this thread's in-flight trace, if any:
/// repeated labels accumulate (`cache.hit` twice → value 2), new labels
/// append until kMaxBaggage, then further labels are dropped silently.
/// `label` must be a string literal. Values are numbers only — never
/// derive them from key material (medlint: obs-secret-arg).
inline void trace_annotate(const char* label, std::uint64_t value = 1) {
  TraceData* trace = detail::t_current_trace;
  if (trace == nullptr) return;
  for (std::uint32_t i = 0; i < trace->baggage_count; ++i) {
    TraceData::BaggageRec& rec = trace->baggage[i];
    // Pointer equality first: annotate sites pass literals, which the
    // linker typically pools; strcmp is the correctness fallback and is
    // fine here — both operands are public metric-label literals.
    // medlint: allow(secret-memcmp)
    if (rec.name == label || std::strcmp(rec.name, label) == 0) {
      rec.value += value;
      return;
    }
  }
  if (trace->baggage_count < TraceData::kMaxBaggage) {
    trace->baggage[trace->baggage_count++] =
        TraceData::BaggageRec{label, value};
  }
}

#else  // !MEDCRYPT_OBS_ENABLED

class Span {
 public:
  explicit Span(Stage) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void finish() {}
};

class TraceScope {
 public:
  static constexpr unsigned kUseGlobalShift = ~0u;
  explicit TraceScope(const char*, unsigned = kUseGlobalShift) {}
  TraceScope(const char*, const TraceContext&) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

inline void trace_annotate(const char*, std::uint64_t = 1) {}

#endif  // MEDCRYPT_OBS_ENABLED

}  // namespace medcrypt::obs
