#include "concurrency.h"

#include <cctype>
#include <map>
#include <set>

namespace medlint {

namespace {

using Tokens = std::vector<Token>;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

const std::set<std::string> kLockTypes = {
    "lock_guard", "unique_lock", "shared_lock", "scoped_lock",
};

// In-place mutators that break the epoch-publish contract (and that mark
// a guarded access as a write).
const std::set<std::string> kMutatorCalls = {
    "insert",  "insert_or_assign", "emplace",   "emplace_back", "push_back",
    "push_front", "emplace_front", "erase",     "clear",        "resize",
    "pop_back", "pop_front",       "assign",    "try_emplace",  "remove",
    "store",
};

struct LockScope {
  std::string mutex;
  bool exclusive;
  std::size_t end;  // token index where the scope closes
};

// Local/parameter symbol table: name -> type identifiers, for resolving
// `obj.member` accesses to the owning class.
using SymTab = std::map<std::string, std::vector<std::string>>;

void collect_local_types(const Tokens& toks, std::size_t lo, std::size_t hi,
                         SymTab* out) {
  bool stmt_start = true;
  std::size_t i = lo;
  while (i < hi) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) {
      if (t.kind == TokKind::kPunct) {
        const std::string& p = t.text;
        if (p == "{" || p == "}" || p == ";" || p == "(") stmt_start = true;
        else if (p != ",") stmt_start = false;
      }
      ++i;
      continue;
    }
    if (!stmt_start || kControlKeywords.count(t.text)) {
      ++i;
      stmt_start = false;
      continue;
    }
    std::vector<std::vector<std::string>> groups;
    std::size_t j = i;
    while (j < hi && is_ident(toks[j])) {
      if (kControlKeywords.count(toks[j].text)) break;
      std::vector<std::string> g{toks[j].text};
      ++j;
      while (j + 1 < hi && is_punct(toks[j], "::") && is_ident(toks[j + 1])) {
        g.push_back(toks[j + 1].text);
        j += 2;
      }
      if (j < hi && is_punct(toks[j], "<")) {
        const std::size_t tc = match_angle(toks, j);
        if (tc == kNpos) break;
        for (std::size_t k = j + 1; k < tc; ++k)
          if (is_ident(toks[k])) g.push_back(toks[k].text);
        j = tc + 1;
      }
      groups.push_back(std::move(g));
      while (j < hi && (is_punct(toks[j], "&") || is_punct(toks[j], "&&") ||
                        is_punct(toks[j], "*")))
        ++j;
    }
    if (groups.size() >= 2 && j < hi && groups.back().size() == 1 &&
        (is_punct(toks[j], "=") || is_punct(toks[j], ";") ||
         is_punct(toks[j], "(") || is_punct(toks[j], "{") ||
         is_punct(toks[j], ":"))) {
      std::vector<std::string> tids;
      for (std::size_t g = 0; g + 1 < groups.size(); ++g)
        for (const std::string& id : groups[g]) tids.push_back(id);
      (*out)[groups.back()[0]] = std::move(tids);
      i = j;
      stmt_start = false;
      continue;
    }
    ++i;
    stmt_start = false;
  }
}

// Last identifier of [lo, hi): `shard.mu` -> "mu", `*mu_` -> "mu_".
std::string last_ident_of(const Tokens& toks, std::size_t lo, std::size_t hi) {
  std::string last;
  for (std::size_t j = lo; j < hi && j < toks.size(); ++j)
    if (is_ident(toks[j])) last = toks[j].text;
  return last;
}

struct FnChecker {
  const std::string& file;
  const Tokens& toks;
  const FileModel& model;
  const Program& prog;
  const FnInfo& fn;
  const ClassInfo* cls;  // linked enclosing class, may be null
  std::vector<Violation>& out;
  SymTab symtab;
  std::vector<LockScope> locks;
  std::set<std::pair<std::size_t, std::string>> seen;

  void flag(std::size_t line, const char* check, std::string msg) {
    if (seen.insert({line, check}).second)
      out.push_back({file, line, check, std::move(msg)});
  }

  bool held(const std::string& mutex, bool need_exclusive) const {
    for (const LockScope& l : locks) {
      if (l.mutex != mutex) continue;
      if (!need_exclusive || l.exclusive) return true;
    }
    return false;
  }

  // Finds among `tids` a linked class that declares `member`.
  const ClassInfo* class_with_member(const std::vector<std::string>& tids,
                                     const std::string& member) const {
    for (const std::string& tid : tids) {
      const ClassInfo* ci = prog.find_class(tid);
      if (ci != nullptr && ci->members.count(member)) return ci;
    }
    return nullptr;
  }

  // Is the access starting at the member token a write? `m = ...`,
  // `m += ...`, `m++`, `m.insert(...)`, optionally through `[...]`.
  bool is_write_at(std::size_t after_member, bool* in_place_mutation) const {
    std::size_t j = after_member;
    *in_place_mutation = false;
    while (j < toks.size() && is_punct(toks[j], "[")) {
      const std::size_t c = match_group(toks, j);
      if (c >= toks.size()) return false;
      j = c + 1;
    }
    if (j >= toks.size()) return false;
    if (toks[j].kind == TokKind::kPunct) {
      const std::string& p = toks[j].text;
      if (p == "=" || p == "+=" || p == "-=" || p == "|=" || p == "&=" ||
          p == "^=" || p == "++" || p == "--")
        return true;
      if ((p == "." || p == "->") && j + 2 < toks.size() &&
          is_ident(toks[j + 1]) && is_punct(toks[j + 2], "(") &&
          kMutatorCalls.count(toks[j + 1].text)) {
        *in_place_mutation = true;
        return true;
      }
    }
    return false;
  }

  void check_member_access(const ClassInfo& owner, const std::string& member,
                           std::size_t line, std::size_t after_member) {
    const auto mit = owner.members.find(member);
    if (mit == owner.members.end()) return;
    const MemberInfo& mi = mit->second;
    bool in_place = false;
    const bool write = is_write_at(after_member, &in_place);
    if (!mi.published_by.empty()) {
      if (in_place) {
        flag(line, "epoch-publish",
             "snapshot '" + member + "' of " + owner.name +
                 " (medlint: published_by(" + mi.published_by +
                 ")) is mutated in place; published epochs are immutable — "
                 "build a new snapshot and swap the pointer under '" +
                 mi.published_by + "'");
      } else if (write && !held(mi.published_by, /*need_exclusive=*/true)) {
        flag(line, "epoch-publish",
             "snapshot '" + member + "' of " + owner.name +
                 " is replaced without an exclusive hold of '" +
                 mi.published_by +
                 "' (medlint: published_by); concurrent readers can "
                 "observe a torn epoch — swap under std::unique_lock");
      }
      return;
    }
    if (mi.guarded_by.empty()) return;
    if (!held(mi.guarded_by, /*need_exclusive=*/write)) {
      flag(line, "lock-discipline",
           std::string(write ? "write to" : "read of") + " member '" +
               member + "' of " + owner.name + " without " +
               (write ? "an exclusive hold" : "a hold") + " of '" +
               mi.guarded_by +
               "' (medlint: guarded_by); take a lock_guard/unique_lock" +
               (write ? "" : " or shared_lock") + " on '" + mi.guarded_by +
               "' first");
    }
  }

  void run() {
    const std::size_t lo = fn.body_open + 1;
    const std::size_t hi = std::min(fn.body_close, toks.size());
    for (const Param& p : fn.params)
      if (!p.name.empty()) symtab[p.name] = p.type_idents;
    collect_local_types(toks, lo, hi, &symtab);
    if (!fn.requires_lock.empty())
      locks.push_back({fn.requires_lock, /*exclusive=*/true, hi});

    std::vector<std::size_t> block_close;  // enclosing '}' indices
    std::size_t i = lo;
    while (i < hi) {
      // retire scopes we have walked past
      while (!locks.empty() && i > locks.back().end) locks.pop_back();
      const Token& t = toks[i];
      if (is_punct(t, "{")) {
        const std::size_t c = match_group(toks, i);
        block_close.push_back(c >= toks.size() ? hi : c);
        ++i;
        continue;
      }
      if (is_punct(t, "}")) {
        if (!block_close.empty()) block_close.pop_back();
        ++i;
        continue;
      }
      if (!is_ident(t)) {
        ++i;
        continue;
      }
      if (i > lo && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")))
        {
          ++i;  // member selections are handled from the chain's base
          continue;
        }

      // skip `std ::` / other qualifiers
      std::size_t base = i;
      while (base + 2 < hi && is_punct(toks[base + 1], "::") &&
             is_ident(toks[base + 2]))
        base += 2;
      const std::string& name = toks[base].text;

      // RAII lock acquisition
      if (kLockTypes.count(name)) {
        std::size_t j = base + 1;
        if (j < hi && is_punct(toks[j], "<")) {
          const std::size_t tc = match_angle(toks, j);
          if (tc != kNpos) j = tc + 1;
        }
        if (j < hi && is_ident(toks[j]) && j + 1 < hi &&
            (is_punct(toks[j + 1], "(") || is_punct(toks[j + 1], "{"))) {
          const std::size_t open = j + 1;
          const std::size_t close = match_group(toks, open);
          if (close < hi) {
            const std::size_t scope_end =
                block_close.empty() ? hi : block_close.back();
            const bool exclusive = name != "shared_lock";
            for (const auto& [alo, ahi] : split_args(toks, open, close)) {
              // skip tag arguments (std::defer_lock, std::adopt_lock)
              const std::string m = last_ident_of(toks, alo, ahi);
              if (m.empty() || m == "defer_lock") continue;
              const std::string mu = (m == "adopt_lock" || m == "try_to_lock")
                                         ? std::string()
                                         : m;
              if (!mu.empty()) locks.push_back({mu, exclusive, scope_end});
            }
            i = close + 1;
            continue;
          }
        }
      }

      // call to a requires_lock-annotated function
      if (base + 1 < hi && is_punct(toks[base + 1], "(")) {
        const auto rl = prog.fn_requires_lock.find(name);
        if (rl != prog.fn_requires_lock.end() && name != fn.name &&
            !held(rl->second, /*need_exclusive=*/false)) {
          flag(t.line, "lock-discipline",
               "call to '" + name + "()' requires lock '" + rl->second +
                   "' (medlint: requires_lock) but no lock on '" +
                   rl->second + "' is held at the call site");
        }
      }

      // guarded/published member accesses
      const bool exempt = fn.ctor_like || fn.is_dtor;
      if (!exempt) {
        if (name == "this" && base + 2 < hi && is_punct(toks[base + 1], "->") &&
            is_ident(toks[base + 2])) {
          if (cls != nullptr)
            check_member_access(*cls, toks[base + 2].text, t.line, base + 3);
        } else if (base + 2 < hi &&
                   (is_punct(toks[base + 1], ".") ||
                    is_punct(toks[base + 1], "->")) &&
                   is_ident(toks[base + 2]) && symtab.count(name)) {
          // obj.member: resolve obj's type through the local symbol table
          const ClassInfo* owner =
              class_with_member(symtab[name], toks[base + 2].text);
          if (owner != nullptr)
            check_member_access(*owner, toks[base + 2].text, t.line,
                                base + 3);
        } else if (cls != nullptr && !symtab.count(name) &&
                   cls->members.count(name)) {
          // bare member of the enclosing class, not shadowed by a local;
          // covers `m_.count(x)` / `m_->insert(x)` — the guarded member
          // is `m_` itself and is_write_at classifies the chained call
          check_member_access(*cls, name, t.line, base + 1);
        }
      }
      i = base + 1;
    }
  }
};

// relaxed_ok vocabulary for the atomic-ordering check: any annotated
// class, member or global name mentioned in the statement vets it.
std::set<std::string> relaxed_ok_names(const Program& prog) {
  std::set<std::string> names;
  for (const auto& [cname, ci] : prog.classes) {
    if (ci.relaxed_ok) names.insert(cname);
    for (const auto& [mname, mi] : ci.members)
      if (mi.relaxed_ok) names.insert(mname);
  }
  for (const auto& [gname, gi] : prog.globals)
    if (gi.relaxed_ok) names.insert(gname);
  return names;
}

void check_atomic_ordering(const std::string& file, const LexedFile& lf,
                           const Program& prog, std::vector<Violation>& out) {
  if (file.find("/obs/") != std::string::npos) return;
  const Tokens& toks = lf.tokens;
  std::set<std::string> vetted;
  bool vetted_built = false;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const bool relaxed =
        is_ident(toks[i], "memory_order_relaxed") ||
        (is_ident(toks[i], "relaxed") && i >= 2 &&
         is_punct(toks[i - 1], "::") && is_ident(toks[i - 2], "memory_order"));
    if (!relaxed) continue;
    if (!vetted_built) {
      vetted = relaxed_ok_names(prog);
      vetted_built = true;
    }
    // enclosing statement: back to the previous ; { } and forward to next
    std::size_t lo = i;
    while (lo > 0 && !is_punct(toks[lo - 1], ";") &&
           !is_punct(toks[lo - 1], "{") && !is_punct(toks[lo - 1], "}"))
      --lo;
    const std::size_t hi = stmt_end(toks, i, toks.size());
    bool ok = false;
    for (std::size_t j = lo; j < hi && !ok; ++j)
      if (is_ident(toks[j]) && vetted.count(toks[j].text)) ok = true;
    if (!ok) {
      out.push_back(
          {file, toks[i].line, "atomic-ordering",
           "memory_order_relaxed outside src/obs/: relaxed ordering is "
           "reserved for the observability counter cells; use "
           "acquire/release (or annotate the cell `// medlint: relaxed_ok` "
           "with a justification for why unordered increments are safe)"});
    }
  }
}

}  // namespace

void run_concurrency_checks(const std::string& file, const LexedFile& lf,
                            const FileModel& model, const Program& prog,
                            std::vector<Violation>& out) {
  for (const FnInfo& fn : model.fns) {
    if (!fn.is_definition) continue;
    const std::string& cname = fn.enclosing_class();
    const ClassInfo* cls =
        cname.empty() ? nullptr : prog.find_class(cname);
    FnChecker chk{file, lf.tokens, model, prog, fn, cls, out, {}, {}, {}};
    chk.run();
  }
  check_atomic_ordering(file, lf, prog, out);
}

}  // namespace medlint
