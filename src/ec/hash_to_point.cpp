#include "ec/hash_to_point.h"

#include "common/error.h"
#include "hash/kdf.h"
#include "obs/span.h"

namespace medcrypt::ec {

Point hash_to_subgroup(const std::shared_ptr<const Curve>& curve,
                       std::string_view domain, BytesView input) {
  // Spans the whole try-and-increment loop, so the histogram exposes the
  // geometric spread of attempts (~2 expected) as latency spread.
  obs::Span span(obs::Stage::kHashToPoint);
  const auto& field = curve->field();
  // 128 extra bits make the mod-p bias negligible.
  const std::size_t xbytes = field->byte_size() + 16;

  for (std::uint32_t counter = 0;; ++counter) {
    // counter ‖ input — public hash-to-curve material, not a key seed.
    Bytes ctr_input;
    ctr_input.reserve(4 + input.size());
    for (int i = 0; i < 4; ++i) {
      ctr_input.push_back(static_cast<std::uint8_t>(counter >> (24 - 8 * i)));
    }
    ctr_input.insert(ctr_input.end(), input.begin(), input.end());

    const Bytes material = hash::expand(domain, ctr_input, xbytes + 1);
    const Fp x = field->from_bigint(
        BigInt::from_bytes_be(BytesView(material.data(), xbytes)));
    const Fp rhs = curve->rhs(x);
    if (!rhs.is_square()) continue;

    Fp y = rhs.sqrt();
    // Use one derived bit to pick the root deterministically.
    const bool want_odd = (material[xbytes] & 1) != 0;
    if (y.parity() != want_odd) y = -y;

    const Point candidate = curve->point(x, y).mul(curve->cofactor());
    if (candidate.is_infinity()) continue;  // killed by cofactor clearing
    return candidate;
  }
}

}  // namespace medcrypt::ec
