// The validity-period revocation baseline for Boneh–Franklin IBE —
// the built-in method the paper argues against (§1, §4):
//
//   "concatenate a validity period to the identifying strings ...
//    revocation is achieved by instructing the PKG to stop issuing new
//    private keys for revoked identities. This involves the need to
//    periodically re-issue all private keys in the system and the PKG
//    must be online most of the time."
//
// Senders encrypt to ID ‖ current-period; the PKG re-issues every
// non-revoked user's key each period. Revoking a user takes effect only
// at the NEXT period boundary (the user keeps his current-period key),
// so time-to-revoke averages half a period, and PKG load grows as
// users × periods. Both costs are exactly what the F2 experiment
// measures against the SEM architecture.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ibe/pkg.h"
#include "sim/clock.h"

namespace medcrypt::revocation {

/// PKG variant implementing validity-period revocation.
class ValidityPeriodPkg {
 public:
  /// `period_ns` is the validity-period length in virtual time.
  ValidityPeriodPkg(pairing::ParamSet group, std::size_t message_len,
                    std::uint64_t period_ns, RandomSource& rng);

  const ibe::SystemParams& params() const { return pkg_.params(); }
  std::uint64_t period_ns() const { return period_ns_; }

  /// The period index containing virtual time t.
  std::uint64_t period_at(std::uint64_t t_ns) const {
    return t_ns / period_ns_;
  }

  /// The identity string senders actually encrypt to: "ID|period".
  static std::string qualified_identity(std::string_view identity,
                                        std::uint64_t period);

  /// Registers a user (they receive keys from the next issuance on).
  void enroll(std::string_view identity);

  /// Marks an identity revoked: the PKG stops issuing keys for it at the
  /// next re-issuance. Records time-to-effect = next boundary - now.
  void revoke(std::string_view identity, std::uint64_t now_ns);

  /// Runs the periodic re-issuance for `period`: extracts a fresh key
  /// for every enrolled, non-revoked user. Returns the number of keys
  /// issued (the PKG-load metric).
  std::size_t reissue_all(std::uint64_t period);

  /// The private key of `identity` for `period`; throws RevokedError if
  /// the identity was revoked before that period's issuance, or
  /// InvalidArgument if the user is not enrolled.
  ec::Point extract_for_period(std::string_view identity,
                               std::uint64_t period) const;

  /// Total keys the PKG has issued across all re-issuances.
  std::uint64_t keys_issued() const { return keys_issued_; }

  /// Virtual-time gap between each revoke() call and its effect.
  const std::vector<std::uint64_t>& effect_latencies_ns() const {
    return effect_latencies_ns_;
  }

 private:
  ibe::Pkg pkg_;
  std::uint64_t period_ns_;
  std::set<std::string, std::less<>> enrolled_;
  std::set<std::string, std::less<>> revoked_;
  std::uint64_t keys_issued_ = 0;
  std::vector<std::uint64_t> effect_latencies_ns_;
};

}  // namespace medcrypt::revocation
