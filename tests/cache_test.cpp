// Tests for the sharded identity LRU cache (ec/identity_cache.h): hit /
// miss / eviction accounting, LRU recency within a shard, epoch
// invalidation (incl. the end-to-end revoke→unrevoke contract through a
// mediator), validator rejection, and a concurrent suite that rides the
// same TSan CI filter as the other SemStress* suites.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "ec/hash_to_point.h"
#include "ec/identity_cache.h"
#include "hash/drbg.h"
#include "mediated/mediated_gdh.h"
#include "pairing/params.h"

namespace medcrypt::ec {
namespace {

using hash::HmacDrbg;

Bytes id_bytes(int i) { return str_bytes("id-" + std::to_string(i)); }

TEST(IdentityCache, MissThenPutThenHit) {
  ShardedLruCache<int> cache({.capacity = 64, .metric_prefix = "test.cache.a"});
  const Bytes id = str_bytes("alice");
  EXPECT_FALSE(cache.get("d", id, 0).has_value());
  cache.put("d", id, 0, 41);
  const auto got = cache.get("d", id, 0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 41);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.invalidations, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(IdentityCache, DomainsAndLengthFramingSeparateKeys) {
  ShardedLruCache<int> cache({.capacity = 64, .metric_prefix = "test.cache.b"});
  cache.put("d1", str_bytes("x"), 0, 1);
  cache.put("d2", str_bytes("x"), 0, 2);
  // Length framing: ("ab", "c") and ("a", "bc") must be distinct keys.
  cache.put("ab", str_bytes("c"), 0, 3);
  cache.put("a", str_bytes("bc"), 0, 4);
  EXPECT_EQ(*cache.get("d1", str_bytes("x"), 0), 1);
  EXPECT_EQ(*cache.get("d2", str_bytes("x"), 0), 2);
  EXPECT_EQ(*cache.get("ab", str_bytes("c"), 0), 3);
  EXPECT_EQ(*cache.get("a", str_bytes("bc"), 0), 4);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(IdentityCache, PutReplacesInPlace) {
  ShardedLruCache<int> cache({.capacity = 64, .metric_prefix = "test.cache.c"});
  cache.put("d", str_bytes("x"), 0, 1);
  cache.put("d", str_bytes("x"), 0, 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get("d", str_bytes("x"), 0), 2);
}

TEST(IdentityCache, EpochMismatchInvalidatesAndDrops) {
  ShardedLruCache<int> cache({.capacity = 64, .metric_prefix = "test.cache.d"});
  cache.put("d", str_bytes("x"), /*epoch=*/1, 7);
  // A lookup from a later epoch must NOT see the old value…
  EXPECT_FALSE(cache.get("d", str_bytes("x"), /*epoch=*/2).has_value());
  const auto s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.misses, 1u);
  // …and the stale entry is gone, not resurrectable at its old epoch.
  EXPECT_FALSE(cache.get("d", str_bytes("x"), /*epoch=*/1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(IdentityCache, ValidatorRejectionIsAMissAndDrops) {
  ShardedLruCache<int> cache({.capacity = 64, .metric_prefix = "test.cache.e"});
  cache.put("d", str_bytes("x"), 0, 9);
  EXPECT_FALSE(
      cache.get("d", str_bytes("x"), 0, [](const int&) { return false; })
          .has_value());
  EXPECT_FALSE(cache.get("d", str_bytes("x"), 0).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(IdentityCache, GetOrComputeComputesOncePerResidentEntry) {
  ShardedLruCache<int> cache({.capacity = 64, .metric_prefix = "test.cache.f"});
  int computes = 0;
  const auto make = [&] { return ++computes; };
  EXPECT_EQ(cache.get_or_compute("d", str_bytes("x"), 0, make), 1);
  EXPECT_EQ(cache.get_or_compute("d", str_bytes("x"), 0, make), 1);
  EXPECT_EQ(computes, 1);
  // Epoch change forces a recompute (and replaces the entry).
  EXPECT_EQ(cache.get_or_compute("d", str_bytes("x"), 1, make), 2);
  EXPECT_EQ(cache.get_or_compute("d", str_bytes("x"), 1, make), 2);
  EXPECT_EQ(computes, 2);
}

TEST(IdentityCache, BoundedSizeAndEvictionAccounting) {
  // capacity 8 over 8 shards = one entry per shard: heavy insertion must
  // keep the cache bounded, with every displacement counted.
  ShardedLruCache<int> cache({.capacity = 8, .metric_prefix = "test.cache.g"});
  constexpr int kInserts = 64;
  for (int i = 0; i < kInserts; ++i) cache.put("d", id_bytes(i), 0, i);
  EXPECT_LE(cache.size(), 8u);
  EXPECT_EQ(cache.stats().evictions, kInserts - cache.size());
}

TEST(IdentityCache, LruEvictsColdestNotMostRecentlyUsed) {
  // Shard assignment is an implementation detail, so first discover
  // three ids that share a shard, using a one-entry-per-shard probe
  // cache as the oracle: a second put that evicts the first means the
  // two ids collided.
  ShardedLruCache<int> probe({.capacity = 8, .metric_prefix = "test.cache.h"});
  std::vector<int> sharers{0};
  for (int j = 1; j < 256 && sharers.size() < 3; ++j) {
    probe.clear();
    probe.put("d", id_bytes(0), 0, 0);
    probe.put("d", id_bytes(j), 0, 0);
    if (!probe.get("d", id_bytes(0), 0).has_value()) sharers.push_back(j);
  }
  ASSERT_EQ(sharers.size(), 3u) << "no 3-way shard collision in 256 ids";

  // capacity 16 = two entries per shard. Fill the shard with A and B,
  // touch A (making B the LRU), insert C: B must go, A and C must stay.
  ShardedLruCache<int> cache({.capacity = 16, .metric_prefix = "test.cache.i"});
  cache.put("d", id_bytes(sharers[0]), 0, 100);
  cache.put("d", id_bytes(sharers[1]), 0, 200);
  EXPECT_TRUE(cache.get("d", id_bytes(sharers[0]), 0).has_value());
  cache.put("d", id_bytes(sharers[2]), 0, 300);
  EXPECT_FALSE(cache.get("d", id_bytes(sharers[1]), 0).has_value());
  EXPECT_TRUE(cache.get("d", id_bytes(sharers[0]), 0).has_value());
  EXPECT_TRUE(cache.get("d", id_bytes(sharers[2]), 0).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(IdentityCache, ClearDropsEntriesKeepsCounters) {
  ShardedLruCache<int> cache({.capacity = 64, .metric_prefix = "test.cache.j"});
  cache.put("d", str_bytes("x"), 0, 1);
  (void)cache.get("d", str_bytes("x"), 0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get("d", str_bytes("x"), 0).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: the revocation-epoch invalidation contract through a real
// mediator (docs/SEM_SERVICE.md, "Cache invalidation").

TEST(IdentityCacheEpoch, RevokeUnrevokeNeverServesStaleEntry) {
  const auto& group = pairing::toy_params();
  auto revocations = std::make_shared<mediated::RevocationList>();
  mediated::GdhMediator sem(group, revocations);
  HmacDrbg rng(7001);
  auto alice = enroll_gdh_user(group, sem, "alice", rng);

  const Bytes msg = str_bytes("revoked-and-back");
  const auto& cache = identity_point_cache();

  const Point t1 = sem.issue_token("alice", msg);
  const auto s1 = cache.stats();
  const Point t2 = sem.issue_token("alice", msg);  // same epoch → cache hit
  const auto s2 = cache.stats();
  EXPECT_EQ(t1, t2);
  EXPECT_GE(s2.hits, s1.hits + 1);

  // revoke + unrevoke bumps the epoch twice; "alice" is entitled to
  // tokens again, but every mediator-cached hash entry from the old
  // epoch must be recomputed, not served stale.
  revocations->revoke("alice");
  revocations->unrevoke("alice");
  const Point t3 = sem.issue_token("alice", msg);
  const auto s3 = cache.stats();
  EXPECT_EQ(t3, t1);  // h(M) is deterministic — same value, fresh entry
  EXPECT_GE(s3.invalidations, s2.invalidations + 1);
}

// ---------------------------------------------------------------------------
// Concurrency (runs under TSan in CI alongside SemStress*): writers,
// readers, epoch churn and clear() racing on one cache instance.

TEST(SemStressCache, ConcurrentGetPutClearAndEpochChurn) {
  ShardedLruCache<int> cache({.capacity = 32, .metric_prefix = "test.cache.k"});
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int k = (t * 7 + i) % 48;
        const std::uint64_t e = epoch.load(std::memory_order_relaxed);
        const int got = cache.get_or_compute("d", id_bytes(k), e,
                                             [&] { return k * 1000 + 7; });
        // Values are a pure function of the key: whatever raced, a
        // lookup can only ever observe the one correct value.
        EXPECT_EQ(got, k * 1000 + 7);
        if (i % 64 == 0) cache.put("d", id_bytes(k), e, k * 1000 + 7);
      }
    });
  }
  std::thread churn([&] {
    while (!stop.load(std::memory_order_acquire)) {
      epoch.fetch_add(1, std::memory_order_relaxed);
      (void)cache.stats();
      (void)cache.size();
      cache.clear();
      std::this_thread::yield();
    }
  });
  for (auto& th : pool) th.join();
  stop.store(true, std::memory_order_release);
  churn.join();

  // Every lookup resolved to exactly one hit or one miss (an epoch
  // invalidation is counted as a miss plus an invalidation).
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(cache.size(), 32u);
}

}  // namespace
}  // namespace medcrypt::ec
