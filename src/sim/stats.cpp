#include "sim/stats.h"

// LinkStats is header-only; anchor translation unit.
