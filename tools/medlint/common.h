// Shared vocabulary for medlint: the diagnostic record and the name/type
// classification heuristics used by both the lexical checks (medlint.cpp)
// and the dataflow checks (taint.cpp).
//
// The sets below encode the repository's secret taxonomy (see
// docs/SECRET_HYGIENE.md): which type names hold key halves, which
// identifier components mark a value as secret, and which suffixes mark a
// value as public metadata (lengths, counts, indices) even when a secret
// word appears earlier in the name.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace medlint {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string check;
  std::string message;
};

// Types whose definitions must wipe their secrets on destruction. Names
// match the paper's secret holders: §3 Shamir/threshold shares, §4
// d_ID halves, §5 x halves, the DRBG state, and RSA private material.
inline const std::set<std::string> kSecretTypes = {
    "PrivateKey",     "SplitKey",       "KeyPair",        "KeyShare",
    "GdhKeyShare",    "ElGamalKeyShare", "Sharing",       "HmacDrbg",
    "Pkg",            "DkgParticipant", "ThresholdDealer", "SemHalfKey",
    "MRsaKeygenResult", "MRsaSemRecord", "UserKeys",      "IbeSemKey",
    "IbsSemKey",      "LimbStore",
};

// Types that hold a SEM-side key half (sem_server.h's lend-don't-copy
// contract): a by-value return of one copies registry secrets onto the
// caller's stack. "KeyHalf" is MediatorBase's template parameter, so the
// generic machinery itself stays covered.
inline const std::set<std::string> kSecretReturnTypes = {
    "KeyHalf",
    "IbeSemKey",
    "SemHalfKey",
    "MRsaSemRecord",
};

// Identifier components that mark a name as secret for *comparison*
// purposes (timing): includes tags and MACs, which are public on the
// wire but must still be compared in constant time.
inline const std::set<std::string> kSecretWords = {
    "key",    "keys",   "secret", "secrets", "seed",     "seeds",
    "token",  "tokens", "tag",    "tags",    "mac",      "macs",
    "share",  "shares", "priv",   "password", "passwd",
};

// Components that mark a name as secret for *storage* purposes
// (confidentiality): excludes tag/mac/token — those live in ciphertexts
// and wire messages, so holding them in plain Bytes is fine.
inline const std::set<std::string> kSecretStorageWords = {
    "key",   "keys",   "secret",   "secrets",  "seed",   "seeds",
    "share", "shares", "priv",     "password", "passwd", "half",
    "halves",
};

// Leading components that mark a value as blinded/public even when a
// secret word follows (masked_seed is a ciphertext component).
inline const std::set<std::string> kPublicPrefixes = {"masked", "pub", "public"};

// Trailing components that mark a name as public *metadata about* a
// secret rather than the secret itself: lengths, counts and positions
// are public by the ct_equal contract (common/bytes.h).
inline const std::set<std::string> kBenignTails = {
    "len",  "size", "count", "bits", "index", "idx",
    "id",   "ok",   "valid", "found", "present",
    // System parameters are public by definition (the IBE/IBS "public
    // params" the PKG publishes); pkg.params carries no key material.
    "param", "params",
};

inline std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// "pkg.master_key_" -> "master_key_"; "sem->d_sem" -> "d_sem".
inline std::string last_member(const std::string& path) {
  std::size_t pos = path.size();
  for (const char* sep : {".", "->", "::"}) {
    const std::size_t p = path.rfind(sep);
    if (p != std::string::npos) {
      const std::size_t after = p + std::string(sep).size();
      pos = std::min(pos, path.size() - after);
    }
  }
  return path.substr(path.size() - pos);
}

// Splits snake_case/camelCase into lowercase components.
inline std::vector<std::string> name_components(const std::string& name) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : name) {
    if (c == '_') {
      if (!cur.empty()) parts.push_back(to_lower(cur));
      cur.clear();
    } else if (std::isupper(static_cast<unsigned char>(c)) && !cur.empty() &&
               std::islower(static_cast<unsigned char>(cur.back()))) {
      parts.push_back(to_lower(cur));
      cur.assign(1, c);
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(to_lower(cur));
  return parts;
}

inline bool is_secret_name(const std::string& identifier_path) {
  for (const std::string& part : name_components(last_member(identifier_path))) {
    if (kSecretWords.count(part)) return true;
  }
  return false;
}

// True when the *tail* of the name marks it as public metadata
// (key_len, share_count, seed_index, ...).
inline bool has_benign_tail(const std::string& name) {
  const std::vector<std::string> parts = name_components(name);
  return !parts.empty() && kBenignTails.count(parts.back()) != 0;
}

inline bool is_secret_storage_name(const std::string& name) {
  const std::vector<std::string> parts = name_components(name);
  if (!parts.empty() && kPublicPrefixes.count(parts.front())) return false;
  for (const std::string& part : parts) {
    if (kSecretStorageWords.count(part)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Call vocabulary shared by the dataflow (taint.cpp) and summary
// (summary.cpp) passes. Both must traverse expressions identically:
// a call that declassifies for the intraprocedural engine must also
// declassify when the summary pass asks "does this argument carry the
// parameter's value".
// ---------------------------------------------------------------------------

// Keywords that may precede '(' without naming a callee or a function.
inline const std::set<std::string> kControlKeywords = {
    "if",     "while",    "for",      "switch",        "catch",
    "return", "sizeof",   "alignof",  "throw",         "new",
    "delete", "case",     "default",  "else",          "do",
    "using",  "typedef",  "goto",     "static_assert", "decltype",
    "noexcept", "alignas", "defined", "requires",
};

inline const std::set<std::string> kCvWords = {
    "const",    "constexpr", "static",       "volatile", "mutable",
    "typename", "struct",    "inline",       "register", "thread_local",
    "unsigned", "signed",    "virtual",      "explicit", "friend",
};

// Accessors whose results are public metadata even on a tainted object:
// lengths/counts are public by the ct_equal contract, and to_bytes() is
// the *named* serialization boundary (secure_buffer.h) — calling it is an
// explicit, reviewable decision, so its result is treated as declassified.
inline const std::set<std::string> kPublicAccessors = {
    "size",     "empty",      "length",    "count",    "capacity",
    "max_size", "bit_length", "bit_count", "npos",     "to_bytes",
    "find",     "contains",   "has_value", "end",      "cend",
};
// "end" is public (an iterator sentinel for lookup-miss tests) but
// "begin" deliberately is not: Bytes(key.begin(), key.end()) is the
// copy-the-secret idiom the escape check exists to catch.

// Calls whose result is public and whose arguments are exactly the vetted
// constant-time/wiping internals — never scanned for sink violations.
inline const std::set<std::string> kSanitizerCalls = {
    "ct_equal", "secure_wipe", "wipe", "sizeof", "alignof", "assert",
};

// Calls that merely combine or forward bytes: result tainted iff an
// argument is (so their argument lists are scanned). Everything not
// listed here is assumed to *transform* its inputs (hash, encrypt, ...)
// and does not propagate taint through its return value — unless its
// function summary says otherwise (summary.cpp).
inline const std::set<std::string> kPropagatorCalls = {
    "concat", "xor_bytes", "move",    "forward", "min",  "max",
    "subspan", "view",     "span",    "data",    "get",  "ref",
    "cref",   "first",     "last",    "to_hex",  "swap",
};

inline bool secret_type_ident(const std::string& id) {
  return id == "SecureBuffer" || kSecretTypes.count(id) != 0 ||
         kSecretReturnTypes.count(id) != 0;
}

// Protocol verification predicates: a leading verify/check/validate
// component marks a call whose boolean verdict is public by design
// (Feldman complaints, share-proof checks, signature verification are all
// published). Their verdicts may gate branches; their arguments are not
// scanned. Deliberately narrow — is_/has_ predicates are NOT included,
// because parity/zero tests on secrets (is_odd) are classic leaks.
inline bool verification_call(const std::string& name) {
  const std::vector<std::string> parts = name_components(name);
  if (parts.empty()) return false;
  // Leading (verify_share) or trailing (hess_verify, mrsa_verify): both
  // snake_case conventions put the verb at an edge.
  for (const std::string* p : {&parts.front(), &parts.back()}) {
    if (*p == "verify" || *p == "check" || *p == "validate") return true;
  }
  return false;
}

// kCamelCase constant convention: compile-time constants are baked into
// the binary, not runtime secrets (obs::Stage::kTokenIssue *names* a
// stage; kShareExtract carries no share).
inline bool constant_name(const std::string& id) {
  return id.size() >= 2 && id[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(id[1]));
}

inline bool secret_fn_name(const std::string& name) {
  return !constant_name(name) && is_secret_storage_name(name) &&
         !has_benign_tail(name);
}

// Type name spelled with a public prefix (PublicKey, MaskedShare):
// declaring a variable of such a type declassifies its secret-looking
// name — `const PublicKey& key` carries only public components.
inline bool public_prefixed(const std::string& name) {
  const std::vector<std::string> parts = name_components(name);
  return !parts.empty() && kPublicPrefixes.count(parts.front()) != 0;
}

}  // namespace medlint
