// Jacobian-coordinate arithmetic: the inversion-free fast path.
//
// Affine group operations cost one field inversion each (~500x a
// multiplication at 512 bits), which made scalar multiplication and the
// Miller loop inversion-bound. Jacobian coordinates (x = X/Z^2,
// y = Y/Z^3) defer the single inversion to the final conversion.
//
// The doubling/addition helpers optionally expose the intermediate
// quantities (`DblTrace` / `AddTrace`) from which the Tate pairing
// reconstructs its line functions without inversions: the line value
// scaled by any F_p factor is equivalent under the final exponentiation
// (the scale lies in the subfield the exponentiation kills), so the
// pairing multiplies by the numerator-scaled line directly.
//
// The affine path in ec/point.cpp remains the reference implementation;
// tests cross-check the two and an ablation bench measures the gap.
#pragma once

#include <span>
#include <vector>

#include "ec/curve.h"
#include "ec/point.h"

namespace medcrypt::ec {

/// A point in Jacobian coordinates (x = X/Z^2, y = Y/Z^3); Z never zero
/// for finite points, `inf` marks the identity.
struct JacPoint {
  Fp x, y, z;
  bool inf = true;
};

/// Converts an affine point (Z = 1).
JacPoint jac_from_affine(const Point& p);

/// Converts back to affine (one inversion). Requires p on `curve`.
Point jac_to_affine(const std::shared_ptr<const Curve>& curve,
                    const JacPoint& p);

/// Converts a batch with a single field inversion (Montgomery's trick:
/// one inversion plus 3(n-1) multiplications).
std::vector<Point> jac_to_affine_batch(
    const std::shared_ptr<const Curve>& curve, std::span<const JacPoint> pts);

/// Intermediates of a doubling step the pairing's line function needs:
///   lambda = M / (2YZ) with M = 3X^2 + aZ^4; new Z' = 2YZ.
/// Scaled line through T (inputs X, Y, Z of T):
///   L = (M·X - 2Y^2 + M·Z^2·xq) + i · (Z'·Z^2·yq)
struct DblTrace {
  Fp m;       // M = 3X^2 + aZ^4
  Fp x;       // X of the input point
  Fp y_sq;    // Y^2 of the input point
  Fp z_sq;    // Z^2 of the input point
  Fp zp_zsq;  // Z' * Z^2 = 2YZ^3
};

/// Doubles `t`. When `trace` is non-null and the input is finite with
/// Y != 0, fills the line intermediates.
JacPoint jac_dbl(const Curve& curve, const JacPoint& t,
                 DblTrace* trace = nullptr);

/// Intermediates of a mixed addition T + P (P affine) for the pairing:
///   lambda = r / (Z·H); scaled line through P:
///   L = (r·(xq + xP) - Z·H·yP) + i · (Z·H·yq)
/// `vertical` marks the T = -P case (H = 0, r != 0): result is infinity
/// and the line is vertical (eliminated by the final exponentiation).
struct AddTrace {
  Fp zh;  // Z * H
  Fp r;
  bool vertical = false;
};

/// Mixed addition t + p with affine p. Requires p finite; t may be
/// infinity. Does NOT support the t == p doubling case (callers in the
/// Miller loop and the ladder never produce it; it throws if hit).
JacPoint jac_add_mixed(const Curve& curve, const JacPoint& t, const Point& p,
                       AddTrace* trace = nullptr);

/// Windowed scalar multiplication k·p via Jacobian coordinates.
/// Semantics identical to the affine reference (negative k negates).
Point jac_mul(const Point& p, const bigint::BigInt& k);

/// jac_mul without the final affine conversion: the result stays in
/// Jacobian form so batch callers (hash_to_subgroup_batch's cofactor
/// clearing) can share one inversion across many results via
/// jac_to_affine_batch.
JacPoint jac_mul_raw(const Point& p, const bigint::BigInt& k);

}  // namespace medcrypt::ec
