// Definition 3 (§4.1): the IND-mID-wCCA game against the mediated
// Boneh–Franklin IBE — "weak" semantic security against insider attacks.
//
// The adversary models a coalition of dishonest users WITH the SEM:
// it may extract the *user* halves of any identity except the challenge
// one, and the *SEM* halves (and per-ciphertext SEM tokens) of EVERY
// identity including the challenge one. After the challenge it may even
// request the SEM token for the challenge ciphertext itself — everything
// short of the challenge user's own key half.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "games/game_common.h"
#include "hash/drbg.h"
#include "ibe/pkg.h"
#include "pairing/tate.h"

namespace medcrypt::games {

/// Challenger for IND-mID-wCCA (Definition 3).
class IndMidWccaGame {
 public:
  IndMidWccaGame(pairing::ParamSet group, std::size_t message_len,
                 std::uint64_t seed);

  const ibe::SystemParams& params() const { return pkg_.params(); }

  // --- oracles (Definition 3, step 2) ----------------------------------------

  /// Decryption query: the challenger generates both halves and returns
  /// the decryption of C (or throws DecryptionError on invalid C).
  /// Forbidden on the exact challenge pair in phase 2.
  Bytes decrypt(std::string_view identity, const ibe::FullCiphertext& ct);

  /// User key extraction d_ID,user. Forbidden on the challenge identity.
  ec::Point extract_user_key(std::string_view identity);

  /// SEM query: the token ê(U, d_ID,sem) for (identity, C). Allowed on
  /// the challenge pair — the "w" in wCCA.
  field::Fp2 sem_query(std::string_view identity,
                       const ibe::FullCiphertext& ct);

  /// SEM key extraction d_ID,sem. Allowed for every identity.
  ec::Point extract_sem_key(std::string_view identity);

  // --- challenge / guess --------------------------------------------------------

  const ibe::FullCiphertext& challenge(std::string_view identity,
                                       BytesView m0, BytesView m1);

  bool submit_guess(int b);

  Phase phase() const { return phase_; }

 private:
  /// Lazily fixes the (user, sem) split for an identity — queries about
  /// the same identity must be mutually consistent.
  const ibe::SplitKey& split_for(std::string_view identity);

  hash::HmacDrbg rng_;
  ibe::Pkg pkg_;
  pairing::TatePairing pairing_;
  std::map<std::string, ibe::SplitKey, std::less<>> splits_;
  Phase phase_ = Phase::kQuery1;
  std::set<std::string, std::less<>> user_extracted_;
  std::optional<std::string> challenge_identity_;
  std::optional<ibe::FullCiphertext> challenge_ct_;
  int coin_ = 0;
};

}  // namespace medcrypt::games
