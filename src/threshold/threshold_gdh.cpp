#include "threshold/threshold_gdh.h"

#include <set>

#include "common/error.h"
#include "pairing/tate.h"

namespace medcrypt::threshold {

const Point& GdhSetup::verification_key(std::uint32_t index) const {
  if (index == 0 || index > verification_keys.size()) {
    throw InvalidArgument("GdhSetup: player index out of range");
  }
  return verification_keys[index - 1];
}

GdhDealing gdh_threshold_setup(pairing::ParamSet group, std::size_t t,
                               std::size_t n, RandomSource& rng) {
  if (t < 1 || t > n) {
    throw InvalidArgument("gdh_threshold_setup: need 1 <= t <= n");
  }
  const BigInt& q = group.order();
  const BigInt x = BigInt::random_unit(rng, q);
  const shamir::Sharing sharing = shamir::share_secret(x, t, n, q, rng);

  GdhDealing out;
  out.setup.threshold = t;
  out.setup.players = n;
  out.setup.public_key = group.mul_g(x);
  out.setup.verification_keys.reserve(n);
  out.shares.reserve(n);
  for (const shamir::Share& share : sharing.shares) {
    out.setup.verification_keys.push_back(group.mul_g(share.value));
    out.shares.push_back(GdhKeyShare{share.index, share.value});
  }
  out.setup.group = std::move(group);
  return out;
}

GdhSignatureShare gdh_sign_share(const GdhSetup& setup,
                                 const GdhKeyShare& share, BytesView message) {
  return GdhSignatureShare{
      share.index, gdh::hash_message(setup.group, message).mul(share.value)};
}

bool gdh_verify_share(const GdhSetup& setup, BytesView message,
                      const GdhSignatureShare& share) {
  if (share.index == 0 || share.index > setup.players) return false;
  const pairing::TatePairing pairing(setup.group.curve);
  return pairing.pair(setup.group.generator, share.value) ==
         pairing.pair(setup.verification_key(share.index),
                      gdh::hash_message(setup.group, message));
}

Point gdh_combine_shares(const GdhSetup& setup,
                         std::span<const GdhSignatureShare> shares) {
  if (shares.size() != setup.threshold) {
    throw InvalidArgument("gdh_combine_shares: need exactly t shares");
  }
  std::vector<std::uint32_t> indices;
  indices.reserve(shares.size());
  std::set<std::uint32_t> seen;
  for (const GdhSignatureShare& s : shares) {
    if (!seen.insert(s.index).second) {
      throw InvalidArgument("gdh_combine_shares: duplicate index");
    }
    indices.push_back(s.index);
  }
  const BigInt& q = setup.group.order();
  Point acc = setup.group.curve->infinity();
  for (const GdhSignatureShare& s : shares) {
    const BigInt lambda =
        shamir::lagrange_coefficient(indices, s.index, BigInt{}, q);
    acc += s.value.mul(lambda);
  }
  return acc;
}

}  // namespace medcrypt::threshold
