// BMI2/ADX kernel tier: hand-scheduled CIOS Montgomery multiply and
// plain wide multiply for K = 4 and K = 8 limbs using MULX (flag-free
// 64x64 multiply) with the ADCX/ADOX dual carry chains, so the low and
// high halves of each row retire on independent CF/OF chains.
//
// Everything is inline asm, so no -m flag is needed at compile time —
// the instructions are emitted literally and only ever executed when
// runtime dispatch (or a cpu_supports-gated caller) selected this tier
// on a CPU with BMI2 + ADX.
//
// Scheduling notes, shared by all four kernels:
//  - The accumulator window lives entirely in registers. A CIOS row
//    needs t[0..K+1]; with K = 8 that is 10 registers, plus one scratch
//    pair (lo/hi) for MULX, one pointer register reloaded per phase, and
//    rdx (MULX's implicit multiplier) — exactly the 13 allocatable GPRs
//    available with rbp as a frame pointer. Sanitizer instrumentation
//    (ASan's stack relocation, TSan's shadow accesses) needs registers
//    of its own and makes the constraint set infeasible, so sanitized
//    builds compile this tier out entirely (the table falls back to
//    portable and cpu_supports() reports the tier unavailable; the CI
//    kernel-matrix ASan leg exercises the portable clamp-down path).
//  - Instead of shifting the window after each row, the rows are
//    instantiated from a macro with ROTATED operand names: phase 2 of a
//    row zeroes its t0 (the m*n[0] low limb cancels by construction of
//    m), and that register re-enters the next row as its t[K+1].
//  - `xorl lo, lo` clears both CF and OF before each chain; `movl $0`
//    (flag-neutral) feeds the end-of-chain folds.
//  - The final conditional subtraction runs in C++, bit-identical to
//    the portable tier's tail (tests/kernel_diff_test.cpp pins this on
//    unreduced inputs too).
#include <cstddef>
#include <cstdint>

#include "bigint/kernels/kernels.h"

// See the scheduling notes above: the asm is register-exact and does
// not compile under sanitizer instrumentation.
#if defined(__x86_64__) && defined(__GNUC__) &&     \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer) && \
    !__has_feature(memory_sanitizer)
#define MEDCRYPT_BMI2_ASM 1
#endif
#else
#define MEDCRYPT_BMI2_ASM 1
#endif
#endif
#ifndef MEDCRYPT_BMI2_ASM
#define MEDCRYPT_BMI2_ASM 0
#endif

namespace medcrypt::bigint::kernels {

#if MEDCRYPT_BMI2_ASM

using u128 = unsigned __int128;

namespace {

// --- shared chain: acc[T0..T8] += rdx * p[0..7], carries into T9 ----------
// Requires T9's incoming value small enough that the two folded carries
// cannot wrap (true for every call site: T9 is 0 or a <= 2-limb carry).
#define MC_CHAIN8(T0, T1, T2, T3, T4, T5, T6, T7, T8, T9)            \
  "xorl %k[lo], %k[lo]\n\t" /* CF = OF = 0 */                        \
  "mulxq 0(%[p]), %[lo], %[hi]\n\t"                                  \
  "adcxq %[lo], %[" T0 "]\n\t"                                       \
  "adoxq %[hi], %[" T1 "]\n\t"                                       \
  "mulxq 8(%[p]), %[lo], %[hi]\n\t"                                  \
  "adcxq %[lo], %[" T1 "]\n\t"                                       \
  "adoxq %[hi], %[" T2 "]\n\t"                                       \
  "mulxq 16(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" T2 "]\n\t"                                       \
  "adoxq %[hi], %[" T3 "]\n\t"                                       \
  "mulxq 24(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" T3 "]\n\t"                                       \
  "adoxq %[hi], %[" T4 "]\n\t"                                       \
  "mulxq 32(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" T4 "]\n\t"                                       \
  "adoxq %[hi], %[" T5 "]\n\t"                                       \
  "mulxq 40(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" T5 "]\n\t"                                       \
  "adoxq %[hi], %[" T6 "]\n\t"                                       \
  "mulxq 48(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" T6 "]\n\t"                                       \
  "adoxq %[hi], %[" T7 "]\n\t"                                       \
  "mulxq 56(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" T7 "]\n\t"                                       \
  "adoxq %[hi], %[" T8 "]\n\t"                                       \
  "movl $0, %k[lo]\n\t" /* flag-neutral zero */                      \
  "adcxq %[lo], %[" T8 "]\n\t"                                       \
  "adoxq %[lo], %[" T9 "]\n\t"                                       \
  "adcxq %[lo], %[" T9 "]\n\t"

#define MC_CHAIN4(T0, T1, T2, T3, T4, T5)                            \
  "xorl %k[lo], %k[lo]\n\t"                                          \
  "mulxq 0(%[p]), %[lo], %[hi]\n\t"                                  \
  "adcxq %[lo], %[" T0 "]\n\t"                                       \
  "adoxq %[hi], %[" T1 "]\n\t"                                       \
  "mulxq 8(%[p]), %[lo], %[hi]\n\t"                                  \
  "adcxq %[lo], %[" T1 "]\n\t"                                       \
  "adoxq %[hi], %[" T2 "]\n\t"                                       \
  "mulxq 16(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" T2 "]\n\t"                                       \
  "adoxq %[hi], %[" T3 "]\n\t"                                       \
  "mulxq 24(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" T3 "]\n\t"                                       \
  "adoxq %[hi], %[" T4 "]\n\t"                                       \
  "movl $0, %k[lo]\n\t"                                              \
  "adcxq %[lo], %[" T4 "]\n\t"                                       \
  "adoxq %[lo], %[" T5 "]\n\t"                                       \
  "adcxq %[lo], %[" T5 "]\n\t"

// --- one CIOS row: t += a[i]*b, then t += m*n and drop the zero limb -----
#define MONT_ROW8(AOFF, T0, T1, T2, T3, T4, T5, T6, T7, T8, T9)      \
  "movq %[a], %%rdx\n\t"                                             \
  "movq " AOFF "(%%rdx), %%rdx\n\t"                                  \
  "movq %[b], %[p]\n\t"                                              \
  MC_CHAIN8(T0, T1, T2, T3, T4, T5, T6, T7, T8, T9)                  \
  "movq %[" T0 "], %%rdx\n\t"                                        \
  "imulq %[n0], %%rdx\n\t" /* m = t[0] * n0inv mod 2^64 */           \
  "movq %[n], %[p]\n\t"                                              \
  MC_CHAIN8(T0, T1, T2, T3, T4, T5, T6, T7, T8, T9)

#define MONT_ROW4(AOFF, T0, T1, T2, T3, T4, T5)                      \
  "movq %[a], %%rdx\n\t"                                             \
  "movq " AOFF "(%%rdx), %%rdx\n\t"                                  \
  "movq %[b], %[p]\n\t"                                              \
  MC_CHAIN4(T0, T1, T2, T3, T4, T5)                                  \
  "movq %[" T0 "], %%rdx\n\t"                                        \
  "imulq %[n0], %%rdx\n\t"                                           \
  "movq %[n], %[p]\n\t"                                              \
  MC_CHAIN4(T0, T1, T2, T3, T4, T5)

// Conditional subtraction shared by the C++ tails: value in t[0..K]
// (K+1 limbs), one subtraction of n — same semantics as the portable
// cios_fixed tail, including the partially-reduced-output quirk.
template <std::size_t K>
void cond_sub_tail(u64* t, const u64* n, u64* out) {
  bool ge = t[K] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = K; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < K; ++i) {
      const u128 diff = static_cast<u128>(t[i]) - n[i] - borrow;
      out[i] = static_cast<u64>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
  } else {
    for (std::size_t i = 0; i < K; ++i) out[i] = t[i];
  }
}

void mul8_bmi2(const u64* a, const u64* b, const u64* n, u64 n0inv,
               u64* out) {
  const u64* ap = a;
  const u64* bp = b;
  const u64* np = n;
  const u64 n0 = n0inv;
  u64 t0 = 0, t1 = 0, t2 = 0, t3 = 0, t4 = 0;
  u64 t5 = 0, t6 = 0, t7 = 0, t8 = 0, t9 = 0;
  u64 lo, hi, p;
  __asm__(
      // Row r's phase 2 zeroes its t0, which rotates in as row r+1's
      // t[K+1]; after 8 rows logical t[j] sits in register (8+j) mod 10.
      MONT_ROW8("0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9")
      MONT_ROW8("8", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t0")
      MONT_ROW8("16", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t0", "t1")
      MONT_ROW8("24", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t0", "t1", "t2")
      MONT_ROW8("32", "t4", "t5", "t6", "t7", "t8", "t9", "t0", "t1", "t2", "t3")
      MONT_ROW8("40", "t5", "t6", "t7", "t8", "t9", "t0", "t1", "t2", "t3", "t4")
      MONT_ROW8("48", "t6", "t7", "t8", "t9", "t0", "t1", "t2", "t3", "t4", "t5")
      MONT_ROW8("56", "t7", "t8", "t9", "t0", "t1", "t2", "t3", "t4", "t5", "t6")
      : [t0] "+&r"(t0), [t1] "+&r"(t1), [t2] "+&r"(t2), [t3] "+&r"(t3),
        [t4] "+&r"(t4), [t5] "+&r"(t5), [t6] "+&r"(t6), [t7] "+&r"(t7),
        [t8] "+&r"(t8), [t9] "+&r"(t9), [lo] "=&r"(lo), [hi] "=&r"(hi),
        [p] "=&r"(p)
      // "memory" instead of per-array operands: an "m" operand naming
      // *a would pin a base register for its address, and every GPR is
      // already spoken for.
      : [a] "m"(ap), [b] "m"(bp), [n] "m"(np), [n0] "m"(n0)
      : "rdx", "cc", "memory");
  u64 t[9] = {t8, t9, t0, t1, t2, t3, t4, t5, t6};
  cond_sub_tail<8>(t, n, out);
  scrub_scratch(t, 9);
}

void mul4_bmi2(const u64* a, const u64* b, const u64* n, u64 n0inv,
               u64* out) {
  const u64* ap = a;
  const u64* bp = b;
  const u64* np = n;
  const u64 n0 = n0inv;
  u64 t0 = 0, t1 = 0, t2 = 0, t3 = 0, t4 = 0, t5 = 0;
  u64 lo, hi, p;
  __asm__(
      MONT_ROW4("0", "t0", "t1", "t2", "t3", "t4", "t5")
      MONT_ROW4("8", "t1", "t2", "t3", "t4", "t5", "t0")
      MONT_ROW4("16", "t2", "t3", "t4", "t5", "t0", "t1")
      MONT_ROW4("24", "t3", "t4", "t5", "t0", "t1", "t2")
      : [t0] "+&r"(t0), [t1] "+&r"(t1), [t2] "+&r"(t2), [t3] "+&r"(t3),
        [t4] "+&r"(t4), [t5] "+&r"(t5), [lo] "=&r"(lo), [hi] "=&r"(hi),
        [p] "=&r"(p)
      : [a] "m"(ap), [b] "m"(bp), [n] "m"(np), [n0] "m"(n0)
      : "rdx", "cc", "memory");
  u64 t[5] = {t4, t5, t0, t1, t2};
  cond_sub_tail<4>(t, n, out);
  scrub_scratch(t, 5);
}

// --- wide (non-reducing) K x K -> 2K multiply -----------------------------
// Product scanning with a K+1-register window: each row adds a[i]*b into
// w[0..K], emits w0 as out[i], zeroes it and rotates it in as the new
// top limb. The window residual is < b < 2^(64K) at every row start, so
// w[K] = 0 on entry and the row sum < 2^(64(K+1)) — the single CF fold
// into w[K] cannot wrap (a carry out would contradict that bound).

#define WIDE_ROW8(AOFF, OOFF, W0, W1, W2, W3, W4, W5, W6, W7, W8)    \
  "movq %[a], %%rdx\n\t"                                             \
  "movq " AOFF "(%%rdx), %%rdx\n\t"                                  \
  "movq %[b], %[p]\n\t"                                              \
  "xorl %k[lo], %k[lo]\n\t"                                          \
  "mulxq 0(%[p]), %[lo], %[hi]\n\t"                                  \
  "adcxq %[lo], %[" W0 "]\n\t"                                       \
  "adoxq %[hi], %[" W1 "]\n\t"                                       \
  "mulxq 8(%[p]), %[lo], %[hi]\n\t"                                  \
  "adcxq %[lo], %[" W1 "]\n\t"                                       \
  "adoxq %[hi], %[" W2 "]\n\t"                                       \
  "mulxq 16(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" W2 "]\n\t"                                       \
  "adoxq %[hi], %[" W3 "]\n\t"                                       \
  "mulxq 24(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" W3 "]\n\t"                                       \
  "adoxq %[hi], %[" W4 "]\n\t"                                       \
  "mulxq 32(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" W4 "]\n\t"                                       \
  "adoxq %[hi], %[" W5 "]\n\t"                                       \
  "mulxq 40(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" W5 "]\n\t"                                       \
  "adoxq %[hi], %[" W6 "]\n\t"                                       \
  "mulxq 48(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" W6 "]\n\t"                                       \
  "adoxq %[hi], %[" W7 "]\n\t"                                       \
  "mulxq 56(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" W7 "]\n\t"                                       \
  "adoxq %[hi], %[" W8 "]\n\t"                                       \
  "movl $0, %k[lo]\n\t"                                              \
  "adcxq %[lo], %[" W8 "]\n\t"                                       \
  "movq %[o], %[hi]\n\t"                                             \
  "movq %[" W0 "], " OOFF "(%[hi])\n\t"                              \
  "xorl %k[" W0 "], %k[" W0 "]\n\t"

#define WIDE_ROW4(AOFF, OOFF, W0, W1, W2, W3, W4)                    \
  "movq %[a], %%rdx\n\t"                                             \
  "movq " AOFF "(%%rdx), %%rdx\n\t"                                  \
  "movq %[b], %[p]\n\t"                                              \
  "xorl %k[lo], %k[lo]\n\t"                                          \
  "mulxq 0(%[p]), %[lo], %[hi]\n\t"                                  \
  "adcxq %[lo], %[" W0 "]\n\t"                                       \
  "adoxq %[hi], %[" W1 "]\n\t"                                       \
  "mulxq 8(%[p]), %[lo], %[hi]\n\t"                                  \
  "adcxq %[lo], %[" W1 "]\n\t"                                       \
  "adoxq %[hi], %[" W2 "]\n\t"                                       \
  "mulxq 16(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" W2 "]\n\t"                                       \
  "adoxq %[hi], %[" W3 "]\n\t"                                       \
  "mulxq 24(%[p]), %[lo], %[hi]\n\t"                                 \
  "adcxq %[lo], %[" W3 "]\n\t"                                       \
  "adoxq %[hi], %[" W4 "]\n\t"                                       \
  "movl $0, %k[lo]\n\t"                                              \
  "adcxq %[lo], %[" W4 "]\n\t"                                       \
  "movq %[o], %[hi]\n\t"                                             \
  "movq %[" W0 "], " OOFF "(%[hi])\n\t"                              \
  "xorl %k[" W0 "], %k[" W0 "]\n\t"

void mul8_wide_bmi2(const u64* a, const u64* b, u64* out) {
  const u64* ap = a;
  const u64* bp = b;
  u64* op = out;
  u64 w0 = 0, w1 = 0, w2 = 0, w3 = 0, w4 = 0;
  u64 w5 = 0, w6 = 0, w7 = 0, w8 = 0;
  u64 lo, hi, p;
  __asm__(
      WIDE_ROW8("0", "0", "w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8")
      WIDE_ROW8("8", "8", "w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w0")
      WIDE_ROW8("16", "16", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w0", "w1")
      WIDE_ROW8("24", "24", "w3", "w4", "w5", "w6", "w7", "w8", "w0", "w1", "w2")
      WIDE_ROW8("32", "32", "w4", "w5", "w6", "w7", "w8", "w0", "w1", "w2", "w3")
      WIDE_ROW8("40", "40", "w5", "w6", "w7", "w8", "w0", "w1", "w2", "w3", "w4")
      WIDE_ROW8("48", "48", "w6", "w7", "w8", "w0", "w1", "w2", "w3", "w4", "w5")
      WIDE_ROW8("56", "56", "w7", "w8", "w0", "w1", "w2", "w3", "w4", "w5", "w6")
      : [w0] "+&r"(w0), [w1] "+&r"(w1), [w2] "+&r"(w2), [w3] "+&r"(w3),
        [w4] "+&r"(w4), [w5] "+&r"(w5), [w6] "+&r"(w6), [w7] "+&r"(w7),
        [w8] "+&r"(w8), [lo] "=&r"(lo), [hi] "=&r"(hi), [p] "=&r"(p)
      : [a] "m"(ap), [b] "m"(bp), [o] "m"(op)
      : "rdx", "cc", "memory");
  // Residual window = out[8..15]; logical w[j] is register (8+j) mod 9.
  out[8] = w8;
  out[9] = w0;
  out[10] = w1;
  out[11] = w2;
  out[12] = w3;
  out[13] = w4;
  out[14] = w5;
  out[15] = w6;
}

void mul4_wide_bmi2(const u64* a, const u64* b, u64* out) {
  const u64* ap = a;
  const u64* bp = b;
  u64* op = out;
  u64 w0 = 0, w1 = 0, w2 = 0, w3 = 0, w4 = 0;
  u64 lo, hi, p;
  __asm__(
      WIDE_ROW4("0", "0", "w0", "w1", "w2", "w3", "w4")
      WIDE_ROW4("8", "8", "w1", "w2", "w3", "w4", "w0")
      WIDE_ROW4("16", "16", "w2", "w3", "w4", "w0", "w1")
      WIDE_ROW4("24", "24", "w3", "w4", "w0", "w1", "w2")
      : [w0] "+&r"(w0), [w1] "+&r"(w1), [w2] "+&r"(w2), [w3] "+&r"(w3),
        [w4] "+&r"(w4), [lo] "=&r"(lo), [hi] "=&r"(hi), [p] "=&r"(p)
      : [a] "m"(ap), [b] "m"(bp), [o] "m"(op)
      : "rdx", "cc", "memory");
  out[4] = w4;
  out[5] = w0;
  out[6] = w1;
  out[7] = w2;
}

}  // namespace

const Table& bmi2_table() {
  // Montgomery reduction of the lazy accumulator is carry-sweep bound
  // rather than multiply bound, so this tier shares the portable redc
  // (and the portable add/sub/neg — dispatch keeps tiers orthogonal).
  static const Table kTable = {
      mul4_bmi2,          mul8_bmi2,      mul4_wide_bmi2,
      mul8_wide_bmi2,     portable_table().redc4,
      portable_table().redc8,             portable_table().add,
      portable_table().sub,               portable_table().neg,
      Kind::kBmi2,        "bmi2",
  };
  return kTable;
}

#else  // !MEDCRYPT_BMI2_ASM: non-x86-64, non-GNU, or sanitized build

const Table& bmi2_table() { return portable_table(); }

#endif

}  // namespace medcrypt::bigint::kernels
