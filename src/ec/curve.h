// Short-Weierstrass elliptic curves y^2 = x^3 + ax + b over F_p.
//
// A Curve is an immutable shared context carrying the base field, the
// coefficients, the prime subgroup order q and the cofactor h (so
// #E(F_p) = h·q). The pairing parameter sets instantiate the supersingular
// curve y^2 = x^3 + x with p ≡ 3 (mod 4), where #E(F_p) = p + 1.
#pragma once

#include <memory>

#include "field/fp.h"

namespace medcrypt::ec {

using bigint::BigInt;
using field::Fp;
using field::PrimeField;

class Point;

/// Immutable curve context. Create via Curve::make and share.
class Curve : public std::enable_shared_from_this<Curve> {
 public:
  /// Builds a curve y^2 = x^3 + ax + b with subgroup order q and cofactor h.
  /// Requires a non-singular curve (4a^3 + 27b^2 != 0).
  static std::shared_ptr<const Curve> make(
      std::shared_ptr<const PrimeField> field, Fp a, Fp b, BigInt order,
      BigInt cofactor);

  const std::shared_ptr<const PrimeField>& field() const { return field_; }
  const Fp& a() const { return a_; }
  const Fp& b() const { return b_; }

  /// Order q of the prime-order subgroup G1.
  const BigInt& order() const { return order_; }

  /// Cofactor h with #E(F_p) = h·q.
  const BigInt& cofactor() const { return cofactor_; }

  /// The point at infinity.
  Point infinity() const;

  /// Constructs an affine point, validating the curve equation.
  /// Throws InvalidArgument for off-curve coordinates.
  Point point(Fp x, Fp y) const;

  /// Right-hand side x^3 + ax + b.
  Fp rhs(const Fp& x) const;

  /// True iff (x, y) satisfies the curve equation.
  bool contains(const Fp& x, const Fp& y) const;

  /// Size in bytes of a compressed point (tag byte + x coordinate).
  std::size_t compressed_size() const { return 1 + field_->byte_size(); }

  /// Parses the compressed encoding produced by Point::to_bytes.
  Point decompress(BytesView bytes) const;

 private:
  Curve(std::shared_ptr<const PrimeField> field, Fp a, Fp b, BigInt order,
        BigInt cofactor);

  std::shared_ptr<const PrimeField> field_;
  Fp a_, b_;
  BigInt order_;
  BigInt cofactor_;
};

}  // namespace medcrypt::ec
