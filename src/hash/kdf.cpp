#include "hash/kdf.h"

#include "hash/sha256.h"

namespace medcrypt::hash {

Bytes expand(std::string_view label, BytesView seed, std::size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  std::uint32_t counter = 0;
  while (out.size() < out_len) {
    Sha256 h;
    h.update(str_bytes(label));
    std::uint8_t ctr[4] = {static_cast<std::uint8_t>(counter >> 24),
                           static_cast<std::uint8_t>(counter >> 16),
                           static_cast<std::uint8_t>(counter >> 8),
                           static_cast<std::uint8_t>(counter)};
    h.update(ctr);
    h.update(seed);
    const auto block = h.finalize();
    const std::size_t take = std::min(block.size(), out_len - out.size());
    out.insert(out.end(), block.begin(), block.begin() + take);
    ++counter;
  }
  return out;
}

Bytes mgf1(BytesView seed, std::size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  std::uint32_t counter = 0;
  while (out.size() < out_len) {
    Sha256 h;
    h.update(seed);
    std::uint8_t ctr[4] = {static_cast<std::uint8_t>(counter >> 24),
                           static_cast<std::uint8_t>(counter >> 16),
                           static_cast<std::uint8_t>(counter >> 8),
                           static_cast<std::uint8_t>(counter)};
    h.update(ctr);
    const auto block = h.finalize();
    const std::size_t take = std::min(block.size(), out_len - out.size());
    out.insert(out.end(), block.begin(), block.begin() + take);
    ++counter;
  }
  return out;
}

bigint::BigInt hash_to_range(std::string_view label, BytesView data,
                             const bigint::BigInt& q) {
  const std::size_t nbytes = (q.bit_length() + 128 + 7) / 8;
  const Bytes wide = expand(label, data, nbytes);
  return bigint::BigInt::from_bytes_be(wide).mod(q);
}

}  // namespace medcrypt::hash
