// Experiment F2 — revocation architectures: SEM vs validity periods.
//
// Paper claims reproduced (§1, §4):
//   - the SEM method gives "finer grain revocation (the private key
//     privileges of the user are instantaneously removed)";
//   - the validity-period method "involves the need to periodically
//     re-issue all private keys in the system and the PKG must be online
//     most of the time".
//
// Simulation: N users over a 30-day virtual horizon with a deterministic
// revocation schedule (one user revoked every ~36 h). For each period
// length, the validity-period PKG re-issues at every boundary; the SEM
// PKG issues once. Reported: total keys issued by the PKG (its load) and
// the mean/max time between a revocation request and its effect.
#include <cstdio>

#include "bench_util.h"
#include "mediated/mediated_ibe.h"
#include "pairing/params.h"
#include "revocation/crl.h"
#include "revocation/revocation.h"
#include "revocation/validity_period.h"

int main() {
  using namespace medcrypt;
  using benchutil::Table;
  benchutil::JsonReport jr("revocation");

  constexpr std::uint64_t kHour = 3'600ULL * 1'000'000'000ULL;
  constexpr std::uint64_t kDay = 24 * kHour;
  constexpr std::uint64_t kHorizon = 30 * kDay;
  constexpr int kUsers = 100;
  constexpr std::uint64_t kRevokeEvery = 36 * kHour;  // ~20 revocations

  std::printf("== F2: revocation — SEM vs validity periods ==\n");
  std::printf("(%d users, 30-day horizon, one revocation every 36 h)\n\n",
              kUsers);

  Table t({"architecture", "period", "PKG keys issued", "mean time-to-revoke",
           "max time-to-revoke", "sender cost", "PKG online?"});

  auto fmt_hours = [](double ns) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f h", ns / static_cast<double>(kHour));
    return std::string(buf);
  };

  // --- validity-period PKG at several period lengths -------------------------
  for (const std::uint64_t period : {1 * kDay, 7 * kDay, 30 * kDay}) {
    hash::HmacDrbg rng(4001);
    revocation::ValidityPeriodPkg pkg(pairing::paper_params(), 32, period, rng);
    for (int i = 0; i < kUsers; ++i) pkg.enroll("user" + std::to_string(i));

    int next_revoked = 0;
    std::uint64_t next_revocation = kRevokeEvery;
    for (std::uint64_t now = 0; now < kHorizon; now += period) {
      pkg.reissue_all(pkg.period_at(now));
      while (next_revocation < now + period && next_revocation < kHorizon) {
        pkg.revoke("user" + std::to_string(next_revoked++), next_revocation);
        next_revocation += kRevokeEvery;
      }
    }
    double mean = 0, max = 0;
    for (const auto lat : pkg.effect_latencies_ns()) {
      mean += static_cast<double>(lat);
      max = std::max(max, static_cast<double>(lat));
    }
    if (!pkg.effect_latencies_ns().empty()) {
      mean /= static_cast<double>(pkg.effect_latencies_ns().size());
    }
    jr.add("time_to_revoke_mean/validity_" + std::to_string(period / kDay) +
               "d", mean,
           static_cast<long>(pkg.effect_latencies_ns().size()));
    t.add_row({"validity periods",
               std::to_string(period / kDay) + " d",
               std::to_string(pkg.keys_issued()), fmt_hours(mean),
               fmt_hours(max), "0 B (ID|period)", "every period"});
  }

  // --- classic PKI with CRLs (the §1 status-quo baseline) ---------------------
  for (const std::uint64_t period : {1 * kDay, 7 * kDay}) {
    revocation::CrlAuthority ca(period);
    revocation::CrlCheckingSender sender(ca);
    // One sender transmitting hourly to random recipients across the
    // horizon; a revocation every 36 h, CA certifies each user once.
    int next_revoked = 0;
    std::uint64_t next_revocation = kRevokeEvery;
    int recipient = 0;
    for (std::uint64_t now = 0; now < kHorizon; now += kHour) {
      while (next_revocation <= now && next_revocation < kHorizon) {
        ca.revoke("user" + std::to_string(next_revoked++), next_revocation);
        next_revocation += kRevokeEvery;
      }
      (void)sender.check_before_use(
          "user" + std::to_string(recipient++ % kUsers), now);
    }
    (void)ca.current(kHorizon);  // flush final publications
    double mean = 0, max = 0;
    for (const auto lat : ca.effect_latencies_ns()) {
      mean += static_cast<double>(lat);
      max = std::max(max, static_cast<double>(lat));
    }
    if (!ca.effect_latencies_ns().empty()) {
      mean /= static_cast<double>(ca.effect_latencies_ns().size());
    }
    jr.add("time_to_revoke_mean/crl_" + std::to_string(period / kDay) + "d",
           mean, static_cast<long>(ca.effect_latencies_ns().size()));
    t.add_row({"PKI + CRL", std::to_string(period / kDay) + " d",
               std::to_string(kUsers) + " certs", fmt_hours(mean),
               fmt_hours(max),
               std::to_string(sender.bytes_fetched()) + " B/sender",
               "CA offline"});
  }

  // --- SEM architecture -------------------------------------------------------
  {
    hash::HmacDrbg rng(4002);
    ibe::Pkg pkg(pairing::paper_params(), 32, rng);
    auto list = std::make_shared<mediated::RevocationList>();
    mediated::IbeMediator sem(pkg.params(), list);
    revocation::RevocationAuthority authority(list);

    std::uint64_t keys_issued = 0;
    for (int i = 0; i < kUsers; ++i) {
      (void)enroll_ibe_user(pkg, sem, "user" + std::to_string(i), rng);
      ++keys_issued;
    }
    int next_revoked = 0;
    for (std::uint64_t now = kRevokeEvery; now < kHorizon; now += kRevokeEvery) {
      authority.revoke("user" + std::to_string(next_revoked++));
    }
    jr.add("time_to_revoke_mean/sem", 0.0, static_cast<long>(keys_issued));
    t.add_row({"SEM (this paper)", "-", std::to_string(keys_issued), "0.0 h",
               "0.0 h", "0 B (no status check)", "setup only"});
  }

  t.print();

  std::printf("\nshape check: validity-period PKG load grows ~ users x "
              "periods and its revocation latency ~ period/2; the SEM PKG "
              "issues each key once and revokes instantly (the SEM, not the "
              "PKG, stays online).\n");
  return 0;
}
