#include "bigint/montgomery.h"

#include <algorithm>

#include "common/error.h"

namespace medcrypt::bigint {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

namespace {
// -n^{-1} mod 2^64 by Newton iteration (n odd).
u64 neg_inv64(u64 n) {
  u64 x = n;  // correct mod 2^3
  for (int i = 0; i < 5; ++i) x *= 2 - n * x;  // doubles precision each step
  return ~x + 1;  // -(n^{-1})
}

// CIOS with the limb count fixed at compile time: the loops fully
// unroll and the scratch limbs stay in registers, which is worth ~2x
// over the runtime-k loop on the widths the named parameter sets use.
template <std::size_t K>
void cios_fixed(const u64* a, const u64* b, const u64* n, u64 n0inv,
                u64* out) {
  u64 t[K + 2] = {};
  for (std::size_t i = 0; i < K; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < K; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[K]) + carry;
    t[K] = static_cast<u64>(s);
    t[K + 1] = static_cast<u64>(s >> 64);

    const u64 m = t[0] * n0inv;
    u128 cur = static_cast<u128>(m) * n[0] + t[0];
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < K; ++j) {
      cur = static_cast<u128>(m) * n[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    s = static_cast<u128>(t[K]) + carry;
    t[K - 1] = static_cast<u64>(s);
    t[K] = t[K + 1] + static_cast<u64>(s >> 64);
    t[K + 1] = 0;
  }
  bool ge = t[K] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = K; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < K; ++i) {
      const u128 diff = static_cast<u128>(t[i]) - n[i] - borrow;
      out[i] = static_cast<u64>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
  } else {
    for (std::size_t i = 0; i < K; ++i) out[i] = t[i];
  }
}
}  // namespace

Montgomery::Montgomery(BigInt n) : n_(std::move(n)) {
  if (n_ <= BigInt(std::uint64_t{1}) || !n_.is_odd()) {
    throw InvalidArgument("Montgomery: modulus must be odd and > 1");
  }
  k_ = n_.limbs().size();
  n0inv_ = neg_inv64(n_.limbs()[0]);
  // R = 2^(64k); R mod n and R^2 mod n via generic reduction (setup only).
  const BigInt r = BigInt(std::uint64_t{1}) << (64 * k_);
  one_ = r % n_;
  r2_ = (one_ * one_) % n_;
  one_padded_ = padded(one_);
  r2_padded_ = padded(r2_);
}

std::vector<u64> Montgomery::padded(const BigInt& a) const {
  std::vector<u64> out = a.limbs_;
  out.resize(k_, 0);
  return out;
}

void Montgomery::pad_limbs(const BigInt& a, u64* out) const {
  const std::size_t have = a.limbs_.size();
  if (a.negative_ || have > k_) {
    throw InvalidArgument("Montgomery::pad_limbs: value out of range");
  }
  std::copy_n(a.limbs_.data(), have, out);
  std::fill_n(out + have, k_ - have, u64{0});
}

BigInt Montgomery::bigint_from_limbs(const u64* a) const {
  BigInt r;
  r.limbs_.assign(a, a + k_);
  r.trim();
  return r;
}

void Montgomery::to_mont_limbs(const BigInt& a, u64* out) const {
  pad_limbs(a, out);
  mul_limbs(out, r2_padded_.data(), out);
}

void Montgomery::mul_limbs(const u64* a, const u64* b, u64* out) const {
  // Unrolled kernels for the limb widths the tree actually uses:
  // toy64 (2), mid128 (4), sweep384 (6), sec80 (8), RSA-1024 (16).
  {
    const u64* n = n_.limbs_.data();
    switch (k_) {
      case 2: return cios_fixed<2>(a, b, n, n0inv_, out);
      case 4: return cios_fixed<4>(a, b, n, n0inv_, out);
      case 6: return cios_fixed<6>(a, b, n, n0inv_, out);
      case 8: return cios_fixed<8>(a, b, n, n0inv_, out);
      case 16: return cios_fixed<16>(a, b, n, n0inv_, out);
      default: break;
    }
  }
  // CIOS: t has k+2 limbs. The scratch lives on the stack so the field
  // hot path never allocates; only absurdly wide moduli (> 4096 bits,
  // none in the tree) take the heap fallback.
  constexpr std::size_t kStackLimbs = 66;
  u64 stack_t[kStackLimbs];
  std::vector<u64> heap_t;
  u64* t = stack_t;
  if (k_ + 2 > kStackLimbs) {
    heap_t.resize(k_ + 2);
    t = heap_t.data();
  }
  std::fill_n(t, k_ + 2, u64{0});

  const u64* n = n_.limbs_.data();
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<u64>(s);
    t[k_ + 1] = static_cast<u64>(s >> 64);

    // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64
    const u64 m = t[0] * n0inv_;
    u128 cur = static_cast<u128>(m) * n[0] + t[0];
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      cur = static_cast<u128>(m) * n[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    s = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<u64>(s);
    t[k_] = t[k_ + 1] + static_cast<u64>(s >> 64);
    t[k_ + 1] = 0;
  }
  // Conditional subtraction: t may be in [0, 2n).
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 diff = static_cast<u128>(t[i]) - n[i] - borrow;
      out[i] = static_cast<u64>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
  } else {
    for (std::size_t i = 0; i < k_; ++i) out[i] = t[i];
  }
}

void Montgomery::add_limbs(const u64* a, const u64* b, u64* out) const {
  const u64* n = n_.limbs_.data();
  u64 carry = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    const u128 s = static_cast<u128>(a[i]) + b[i] + carry;
    out[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  // Reduce: the sum is in [0, 2n), possibly with a carry limb.
  bool ge = carry != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (out[i] != n[i]) {
        ge = out[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 diff = static_cast<u128>(out[i]) - n[i] - borrow;
      out[i] = static_cast<u64>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
  }
}

void Montgomery::sub_limbs(const u64* a, const u64* b, u64* out) const {
  const u64* n = n_.limbs_.data();
  u64 borrow = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    const u128 diff = static_cast<u128>(a[i]) - b[i] - borrow;
    out[i] = static_cast<u64>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
  if (borrow) {  // a < b: wrap back into range by adding n
    u64 carry = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 s = static_cast<u128>(out[i]) + n[i] + carry;
      out[i] = static_cast<u64>(s);
      carry = static_cast<u64>(s >> 64);
    }
  }
}

void Montgomery::neg_limbs(const u64* a, u64* out) const {
  u64 nonzero = 0;
  for (std::size_t i = 0; i < k_; ++i) nonzero |= a[i];
  if (nonzero == 0) {
    std::fill_n(out, k_, u64{0});
    return;
  }
  const u64* n = n_.limbs_.data();
  u64 borrow = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    const u128 diff = static_cast<u128>(n[i]) - a[i] - borrow;
    out[i] = static_cast<u64>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
}

BigInt Montgomery::mul(const BigInt& a, const BigInt& b) const {
  const std::vector<u64> pa = padded(a);
  const std::vector<u64> pb = padded(b);
  std::vector<u64> out(k_, 0);
  mul_limbs(pa.data(), pb.data(), out.data());
  BigInt r;
  r.limbs_ = std::move(out);
  r.trim();
  return r;
}

BigInt Montgomery::to_mont(const BigInt& a) const { return mul(a, r2_); }

BigInt Montgomery::from_mont(const BigInt& a) const {
  return mul(a, BigInt(std::uint64_t{1}));
}

BigInt Montgomery::pow_mont(const BigInt& base_mont, const BigInt& e) const {
  if (e.is_negative()) throw InvalidArgument("Montgomery::pow: negative exponent");
  if (e.is_zero()) return one_;

  // Fixed 4-bit window.
  constexpr int kWindow = 4;
  std::vector<BigInt> table(1 << kWindow);
  table[0] = one_;
  for (std::size_t i = 1; i < table.size(); ++i) {
    table[i] = mul(table[i - 1], base_mont);
  }

  const std::size_t nbits = e.bit_length();
  const std::size_t nwindows = (nbits + kWindow - 1) / kWindow;
  BigInt acc = one_;
  bool started = false;
  for (std::size_t w = nwindows; w-- > 0;) {
    if (started) {
      for (int i = 0; i < kWindow; ++i) acc = mul(acc, acc);
    }
    unsigned idx = 0;
    for (int i = kWindow - 1; i >= 0; --i) {
      idx = (idx << 1) | (e.bit(w * kWindow + i) ? 1u : 0u);
    }
    if (idx != 0) {
      acc = mul(acc, table[idx]);
      started = true;
    } else if (!started) {
      continue;
    }
  }
  // The table holds powers of the base, which is secret-bearing for
  // RSA-CRT and blinded-exponent callers; scrub before the frames die.
  for (BigInt& entry : table) entry.wipe();
  if (!started) return one_;
  return acc;
}

BigInt Montgomery::pow(const BigInt& base, const BigInt& e) const {
  return from_mont(pow_mont(to_mont(base), e));
}

}  // namespace medcrypt::bigint
