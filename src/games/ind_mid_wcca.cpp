#include "games/ind_mid_wcca.h"

namespace medcrypt::games {

IndMidWccaGame::IndMidWccaGame(pairing::ParamSet group,
                               std::size_t message_len, std::uint64_t seed)
    : rng_(seed), pkg_(std::move(group), message_len, rng_),
      pairing_(pkg_.params().curve()) {}

const ibe::SplitKey& IndMidWccaGame::split_for(std::string_view identity) {
  const auto it = splits_.find(identity);
  if (it != splits_.end()) return it->second;
  auto [inserted, ok] =
      splits_.emplace(std::string(identity), pkg_.extract_split(identity, rng_));
  return inserted->second;
}

Bytes IndMidWccaGame::decrypt(std::string_view identity,
                              const ibe::FullCiphertext& ct) {
  if (phase_ == Phase::kFinished) {
    throw GameViolation("IND-mID-wCCA: game already finished");
  }
  if (phase_ == Phase::kQuery2 && challenge_identity_ &&
      *challenge_identity_ == identity && challenge_ct_ &&
      challenge_ct_->to_bytes() == ct.to_bytes()) {
    throw GameViolation(
        "IND-mID-wCCA: cannot decrypt the challenge ciphertext");
  }
  const ibe::SplitKey& split = split_for(identity);
  const auto g = pairing_.pair(ct.u, split.user) * pairing_.pair(ct.u, split.sem);
  return ibe::full_decrypt_with_mask(pkg_.params(), g, ct);
}

ec::Point IndMidWccaGame::extract_user_key(std::string_view identity) {
  if (phase_ == Phase::kFinished) {
    throw GameViolation("IND-mID-wCCA: game already finished");
  }
  if (challenge_identity_ && *challenge_identity_ == identity) {
    throw GameViolation(
        "IND-mID-wCCA: cannot extract the challenge identity's user key");
  }
  user_extracted_.insert(std::string(identity));
  return split_for(identity).user;
}

field::Fp2 IndMidWccaGame::sem_query(std::string_view identity,
                                     const ibe::FullCiphertext& ct) {
  if (phase_ == Phase::kFinished) {
    throw GameViolation("IND-mID-wCCA: game already finished");
  }
  // Allowed on everything, including the challenge pair (Definition 3,
  // step 5: "It is allowed to make a SEM request on C* for ID*").
  return pairing_.pair(ct.u, split_for(identity).sem);
}

ec::Point IndMidWccaGame::extract_sem_key(std::string_view identity) {
  if (phase_ == Phase::kFinished) {
    throw GameViolation("IND-mID-wCCA: game already finished");
  }
  return split_for(identity).sem;
}

const ibe::FullCiphertext& IndMidWccaGame::challenge(std::string_view identity,
                                                     BytesView m0,
                                                     BytesView m1) {
  if (phase_ != Phase::kQuery1) {
    throw GameViolation("IND-mID-wCCA: challenge already issued");
  }
  if (user_extracted_.contains(std::string(identity))) {
    throw GameViolation(
        "IND-mID-wCCA: challenge identity's user key was extracted");
  }
  if (m0.size() != m1.size() || m0.size() != pkg_.params().message_len) {
    throw GameViolation("IND-mID-wCCA: challenge messages must be message_len");
  }
  std::uint8_t byte;
  rng_.fill(std::span(&byte, 1));
  coin_ = byte & 1;
  challenge_identity_ = std::string(identity);
  challenge_ct_ =
      ibe::full_encrypt(pkg_.params(), identity, coin_ ? m1 : m0, rng_);
  phase_ = Phase::kQuery2;
  return *challenge_ct_;
}

bool IndMidWccaGame::submit_guess(int b) {
  if (phase_ != Phase::kQuery2) {
    throw GameViolation("IND-mID-wCCA: no outstanding challenge");
  }
  phase_ = Phase::kFinished;
  return b == coin_;
}

}  // namespace medcrypt::games
