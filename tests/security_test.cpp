// Security-property tests: adversarial scenarios from the paper's
// analysis sections, expressed operationally.
//
//  - §4: a SEM-corrupting insider cannot decrypt an honest user's
//    ciphertext in mediated IBE (contrast with IB-mRSA, where the same
//    corruption factors the common modulus — tests/ib_mrsa_test.cpp).
//  - §4: decryption tokens are bound to one ciphertext and useless to
//    other users.
//  - §3.2: robustness proofs are sound (cheaters cannot forge) — the
//    simulator side (zero-knowledge) is checked by verifying a simulated
//    transcript distribution shape.
//  - A small IND-style game harness sanity-checks that a key-less
//    distinguisher wins with probability ~1/2.
#include <gtest/gtest.h>

#include "common/error.h"
#include "hash/drbg.h"
#include "mediated/mediated_ibe.h"
#include "pairing/params.h"
#include "threshold/threshold_ibe.h"

namespace medcrypt {
namespace {

using hash::HmacDrbg;
using mediated::IbeMediator;
using mediated::RevocationList;

class InsiderAdversaryTest : public ::testing::Test {
 protected:
  InsiderAdversaryTest()
      : rng_(160), pkg_(pairing::toy_params(), 32, rng_),
        revocations_(std::make_shared<RevocationList>()),
        sem_(pkg_.params(), revocations_) {}

  HmacDrbg rng_;
  ibe::Pkg pkg_;
  std::shared_ptr<RevocationList> revocations_;
  IbeMediator sem_;
};

TEST_F(InsiderAdversaryTest, SemCorruptionDoesNotBreakOtherUsers) {
  // Mallory is a legitimate user who fully corrupts the SEM: she holds
  // her own d_user, every d_sem (modeled by asking the SEM for arbitrary
  // tokens), and the revocation switch. Theorem 4.1's game says she still
  // cannot decrypt a ciphertext for honest Alice.
  auto alice = enroll_ibe_user(pkg_, sem_, "alice", rng_);
  auto mallory = enroll_ibe_user(pkg_, sem_, "mallory", rng_);

  Bytes m(32);
  rng_.fill(m);
  const auto ct = ibe::full_encrypt(pkg_.params(), "alice", m, rng_);

  // Everything Mallory can compute from her corruption power:
  const auto alice_sem_token = sem_.issue_token("alice", ct.u);  // d_sem side
  const auto mallory_partial = mallory.partial(ct.u);            // her d_user

  // 1) The SEM token alone:
  EXPECT_THROW(ibe::full_decrypt_with_mask(pkg_.params(), alice_sem_token, ct),
               DecryptionError);
  // 2) SEM token combined with HER user half (wrong identity):
  EXPECT_THROW(ibe::full_decrypt_with_mask(
                   pkg_.params(), alice_sem_token * mallory_partial, ct),
               DecryptionError);
  // 3) What she CAN do is toggle revocation — the paper's only concession:
  revocations_->revoke("alice");
  EXPECT_THROW(alice.decrypt(ct, sem_), RevokedError);
  revocations_->unrevoke("alice");
  EXPECT_EQ(alice.decrypt(ct, sem_), m);
}

TEST_F(InsiderAdversaryTest, TokenForOneUserUselessToAnother) {
  // "the token ê(U, d_ID,sem) is useless to any user other than Alice".
  auto alice = enroll_ibe_user(pkg_, sem_, "alice", rng_);
  auto bob = enroll_ibe_user(pkg_, sem_, "bob", rng_);

  Bytes m(32);
  rng_.fill(m);
  const auto ct_bob = ibe::full_encrypt(pkg_.params(), "bob", m, rng_);

  // Bob's SEM token combined with Alice's user half: garbage.
  const auto bob_token = sem_.issue_token("bob", ct_bob.u);
  EXPECT_THROW(ibe::full_decrypt_with_mask(pkg_.params(),
                                           bob_token * alice.partial(ct_bob.u),
                                           ct_bob),
               DecryptionError);
  // And Bob of course succeeds.
  EXPECT_EQ(bob.decrypt(ct_bob, sem_), m);
}

TEST_F(InsiderAdversaryTest, PkgOfflineAfterEnrollment) {
  // §4: "the PKG can be put offline once it has delivered private keys".
  // Model: enroll, destroy the PKG, keep decrypting.
  auto params = pkg_.params();
  std::optional<ibe::Pkg> pkg_storage;  // a second PKG we can destroy
  HmacDrbg rng(161);
  pkg_storage.emplace(pairing::toy_params(), 32, rng);
  auto revocations = std::make_shared<RevocationList>();
  IbeMediator sem(pkg_storage->params(), revocations);
  auto carol = enroll_ibe_user(*pkg_storage, sem, "carol", rng);
  const auto carol_params = pkg_storage->params();
  pkg_storage.reset();  // PKG goes offline / is destroyed

  Bytes m(32);
  rng.fill(m);
  const auto ct = ibe::full_encrypt(carol_params, "carol", m, rng);
  EXPECT_EQ(carol.decrypt(ct, sem), m);
}

TEST_F(InsiderAdversaryTest, SemViewContainsNoPlaintextMaterial) {
  // Structural check of the §4 protocol: the SEM's entire view of a
  // decryption is (identity, U). Feeding the SEM V/W is impossible by
  // interface; here we assert the token depends only on U.
  auto alice = enroll_ibe_user(pkg_, sem_, "alice", rng_);
  Bytes m1(32, 0x00), m2(32, 0xff);
  auto ct1 = ibe::full_encrypt(pkg_.params(), "alice", m1, rng_);
  // Craft a second ciphertext with the same U but different body:
  auto ct2 = ct1;
  ct2.v[0] ^= 1;
  EXPECT_EQ(sem_.issue_token("alice", ct1.u).to_bytes(),
            sem_.issue_token("alice", ct2.u).to_bytes());
}

// ---------------------------------------------------------------------------
// A miniature IND-style game harness.
// ---------------------------------------------------------------------------

// Challenger for a 1-round indistinguishability game against mediated IBE.
class IndGame {
 public:
  IndGame(const ibe::SystemParams& params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  // Runs one round: adversary supplies m0/m1 and a guess function over
  // the challenge ciphertext; returns true if the guess was right.
  template <typename Guess>
  bool round(BytesView m0, BytesView m1, std::string_view identity,
             Guess&& guess) {
    std::uint8_t b;
    rng_.fill(std::span(&b, 1));
    b &= 1;
    const auto ct =
        ibe::full_encrypt(params_, identity, b ? m1 : m0, rng_);
    return guess(ct) == b;
  }

 private:
  const ibe::SystemParams& params_;
  HmacDrbg rng_;
};

TEST(IndGameHarness, KeylessGuesserWinsHalfTheTime) {
  HmacDrbg rng(162);
  ibe::Pkg pkg(pairing::toy_params(), 32, rng);
  IndGame game(pkg.params(), 163);

  const Bytes m0(32, 0x00), m1(32, 0xff);
  int wins = 0;
  const int kRounds = 200;
  HmacDrbg guess_rng(164);
  for (int i = 0; i < kRounds; ++i) {
    wins += game.round(m0, m1, "target", [&](const ibe::FullCiphertext&) {
      std::uint8_t g;
      guess_rng.fill(std::span(&g, 1));
      return static_cast<int>(g & 1);
    });
  }
  // Binomial(200, 1/2): [70, 130] is a > 10-sigma corridor.
  EXPECT_GT(wins, 70);
  EXPECT_LT(wins, 130);
}

TEST(IndGameHarness, KeyHolderWinsAlways) {
  // Sanity: the game is winnable WITH the key (so the harness is not
  // vacuous).
  HmacDrbg rng(165);
  ibe::Pkg pkg(pairing::toy_params(), 32, rng);
  IndGame game(pkg.params(), 166);
  const auto d = pkg.extract("target");
  const Bytes m0(32, 0x00), m1(32, 0xff);
  int wins = 0;
  for (int i = 0; i < 20; ++i) {
    wins += game.round(m0, m1, "target", [&](const ibe::FullCiphertext& ct) {
      return ibe::full_decrypt(pkg.params(), d, ct) == m1 ? 1 : 0;
    });
  }
  EXPECT_EQ(wins, 20);
}

// ---------------------------------------------------------------------------
// Robust-proof soundness under systematic manipulation.
// ---------------------------------------------------------------------------

TEST(RobustProofSoundness, EveryFieldOfTheProofIsBinding) {
  HmacDrbg rng(167);
  threshold::ThresholdDealer dealer(pairing::toy_params(), 32, 2, 3, rng);
  const auto keys = dealer.extract_shares("alice");
  Bytes m(32);
  rng.fill(m);
  const auto ct = ibe::full_encrypt(dealer.setup().params, "alice", m, rng);

  auto share = threshold::compute_decryption_share(dealer.setup(), keys[0],
                                                   ct.u, true, rng);
  const auto q_id = ibe::map_identity(dealer.setup().params, "alice");
  const pairing::TatePairing pairing(dealer.setup().params.curve());
  const auto vk = pairing.pair(dealer.setup().verification_key(1), q_id);
  const auto& P = dealer.setup().params.generator();
  const auto& q = dealer.setup().params.order();

  // Genuine proof verifies.
  ASSERT_TRUE(threshold::verify_share_proof(pairing, P, ct.u, share.value, vk,
                                            q, *share.proof));

  // Tamper with each field in turn.
  {
    auto bad = *share.proof;
    bad.w1 = bad.w1.square();
    EXPECT_FALSE(threshold::verify_share_proof(pairing, P, ct.u, share.value,
                                               vk, q, bad));
  }
  {
    auto bad = *share.proof;
    bad.w2 = bad.w2 * bad.w1;
    EXPECT_FALSE(threshold::verify_share_proof(pairing, P, ct.u, share.value,
                                               vk, q, bad));
  }
  {
    auto bad = *share.proof;
    bad.e = bad.e.add_mod(bigint::BigInt(1), q);
    EXPECT_FALSE(threshold::verify_share_proof(pairing, P, ct.u, share.value,
                                               vk, q, bad));
  }
  {
    auto bad = *share.proof;
    bad.v = bad.v + P;
    EXPECT_FALSE(threshold::verify_share_proof(pairing, P, ct.u, share.value,
                                               vk, q, bad));
  }
  // A wrong statement (different share value) with the honest proof:
  EXPECT_FALSE(threshold::verify_share_proof(pairing, P, ct.u,
                                             share.value.square(), vk, q,
                                             *share.proof));
}

}  // namespace
}  // namespace medcrypt
