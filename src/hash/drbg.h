// Deterministic and system random sources.
//
// HmacDrbg follows the HMAC_DRBG construction of NIST SP 800-90A
// (SHA-256 variant, no reseed counter enforcement — this is a research
// library). Seeding with a fixed seed makes every randomized algorithm in
// medcrypt reproducible, which the test suite and benches rely on.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/random_source.h"
#include "common/secure_buffer.h"

namespace medcrypt::hash {

/// HMAC-SHA256 DRBG: deterministic random source.
class HmacDrbg final : public RandomSource {
 public:
  /// Instantiates from arbitrary seed material.
  explicit HmacDrbg(BytesView seed);

  /// Convenience: seeds from a 64-bit value (tests, benches).
  explicit HmacDrbg(std::uint64_t seed);

  void fill(std::span<std::uint8_t> out) override;

  /// Mixes additional entropy/material into the state.
  void reseed(BytesView material);

 private:
  void update(BytesView material);

  // K and V of SP 800-90A. SecureBuffer so a dropped DRBG leaves no key
  // stream state behind (the K/V pair predicts all future output).
  SecureBuffer key_;
  SecureBuffer value_;
};

/// RandomSource seeded from std::random_device; the default source for
/// examples and interactive use.
class SystemRandom final : public RandomSource {
 public:
  SystemRandom();
  void fill(std::span<std::uint8_t> out) override;

 private:
  HmacDrbg drbg_;
};

}  // namespace medcrypt::hash
