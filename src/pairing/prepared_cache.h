// Process-wide caches for pairing-side public precomputations, built on
// the sharded identity LRU (src/ec/identity_cache.h):
//
//   - shared_prepared(): the Miller-loop program of a fixed PUBLIC first
//     argument (the generator P, a public key R, their negations…),
//     keyed by the point's compressed encoding. A verification equation
//     checked against the same base twice amortizes the whole Jacobian
//     chain — exactly the prepared-pairing half of TatePairing::prepare,
//     but shared across call sites and bounded by LRU eviction
//     (metric family `sem.cache.prepared`).
//   - cached_pair(): full pairing values of fixed PUBLIC argument pairs,
//     keyed by both compressed encodings — ê(P, P) for the Hess IBS
//     commitment is the canonical entry (metric family `sem.cache.gpp`).
//
// SECRET first arguments (d_ID,sem halves) must NOT go through here:
// this cache never wipes, and entries outlive their enrolling mediator.
// The SEM's per-identity secret programs live in the MediatorBase
// registry instead.
#pragma once

#include <memory>
#include <string_view>

#include "pairing/tate.h"

namespace medcrypt::pairing {

/// Prepared program of public point `p` on `pairing`'s curve, from the
/// process-wide cache (computed and inserted on miss). `domain` scopes
/// the cache tag (e.g. "gdh.verify"); entries from other curves that
/// collide on serialized bytes are rejected on hit. The returned program
/// is immutable and shared — callers on other threads may hold it
/// concurrently.
std::shared_ptr<const PreparedPairing> shared_prepared(
    const TatePairing& pairing, const Point& p, std::string_view domain);

/// Cached full pairing ê(p, q) of two public points (both encodings form
/// the tag). Use for fixed pairs recomputed per operation, like the Hess
/// signer's ê(P, P).
Fp2 cached_pair(const TatePairing& pairing, const Point& p, const Point& q,
                std::string_view domain);

}  // namespace medcrypt::pairing
