#include "ibe/hybrid.h"

#include "common/error.h"
#include "common/secure_buffer.h"
#include "hash/hmac.h"
#include "hash/kdf.h"

namespace medcrypt::ibe {

namespace {
constexpr std::size_t kTagLen = 32;

// Independent keys for the stream and the MAC, derived from the session
// key (which is used once, so no nonce is needed). SecureBuffer adopts
// the expand() temporary, wiping it, and zeroizes on destruction.
SecureBuffer stream_key(BytesView session_key, std::size_t len) {
  return SecureBuffer(hash::expand("Hybrid.stream", session_key, len));
}

SecureBuffer mac_key(BytesView session_key) {
  return SecureBuffer(hash::expand("Hybrid.mac", session_key, 32));
}
}  // namespace

Bytes HybridCiphertext::to_bytes() const {
  // key_block ‖ tag ‖ body (body is the only variable-length part, so it
  // goes last and needs no framing).
  return concat(key_block.to_bytes(), tag, body);
}

HybridCiphertext HybridCiphertext::from_bytes(const SystemParams& params,
                                              BytesView b) {
  const std::size_t key_block_len =
      params.curve()->compressed_size() + 2 * params.message_len;
  if (b.size() < key_block_len + kTagLen) {
    throw InvalidArgument("HybridCiphertext::from_bytes: too short");
  }
  HybridCiphertext out;
  out.key_block =
      FullCiphertext::from_bytes(params, b.subspan(0, key_block_len));
  out.tag = Bytes(b.begin() + key_block_len,
                  b.begin() + key_block_len + kTagLen);
  out.body = Bytes(b.begin() + key_block_len + kTagLen, b.end());
  return out;
}

HybridCiphertext seal(const SystemParams& params, std::string_view identity,
                      BytesView message, RandomSource& rng) {
  if (params.message_len != kSessionKeyLen) {
    throw InvalidArgument(
        "hybrid seal: PKG must be set up with message_len == kSessionKeyLen");
  }
  SecureBuffer session_key(kSessionKeyLen);
  rng.fill(session_key.span());

  HybridCiphertext out;
  out.key_block = full_encrypt(params, identity, session_key, rng);
  out.body = xor_bytes(message, stream_key(session_key, message.size()));
  out.tag = hash::hmac_sha256(mac_key(session_key), out.body);
  return out;
}

Bytes open_with_session_key(BytesView session_key,
                            const HybridCiphertext& ct) {
  const Bytes expected = hash::hmac_sha256(mac_key(session_key), ct.body);
  if (!ct_equal(expected, ct.tag)) {
    throw DecryptionError("hybrid open: integrity tag mismatch");
  }
  return xor_bytes(ct.body, stream_key(session_key, ct.body.size()));
}

Bytes open(const SystemParams& params, const ec::Point& private_key,
           const HybridCiphertext& ct) {
  const SecureBuffer session_key(full_decrypt(params, private_key, ct.key_block));
  return open_with_session_key(session_key, ct);
}

}  // namespace medcrypt::ibe
