// Tests for hashed EC-ElGamal (CPA) and its Fujisaki–Okamoto transform.
#include <gtest/gtest.h>

#include "common/error.h"
#include "elgamal/ec_elgamal.h"
#include "elgamal/fo_transform.h"
#include "hash/drbg.h"
#include "pairing/params.h"

namespace medcrypt::elgamal {
namespace {

using hash::HmacDrbg;

class ElGamalTest : public ::testing::Test {
 protected:
  ElGamalTest() : rng_(100) {
    params_.group = pairing::toy_params();
    params_.message_len = 32;
  }

  Bytes random_message() {
    Bytes m(params_.message_len);
    rng_.fill(m);
    return m;
  }

  HmacDrbg rng_;
  Params params_;
};

TEST_F(ElGamalTest, CpaRoundTrip) {
  const KeyPair kp = keygen(params_, rng_);
  const Bytes m = random_message();
  const auto ct = cpa_encrypt(params_, kp.pub, m, rng_);
  EXPECT_EQ(cpa_decrypt(params_, kp.secret, ct), m);
}

TEST_F(ElGamalTest, CpaWrongKeyGarbage) {
  const KeyPair kp1 = keygen(params_, rng_);
  const KeyPair kp2 = keygen(params_, rng_);
  const Bytes m = random_message();
  const auto ct = cpa_encrypt(params_, kp1.pub, m, rng_);
  EXPECT_NE(cpa_decrypt(params_, kp2.secret, ct), m);
}

TEST_F(ElGamalTest, CpaIsMalleable) {
  // The reason CPA ElGamal alone cannot be mediated securely (§4).
  const KeyPair kp = keygen(params_, rng_);
  const Bytes m = random_message();
  auto ct = cpa_encrypt(params_, kp.pub, m, rng_);
  ct.c2[0] ^= 0xff;
  Bytes expected = m;
  expected[0] ^= 0xff;
  EXPECT_EQ(cpa_decrypt(params_, kp.secret, ct), expected);
}

TEST_F(ElGamalTest, FoRoundTrip) {
  const KeyPair kp = keygen(params_, rng_);
  const Bytes m = random_message();
  const auto ct = fo_encrypt(params_, kp.pub, m, rng_);
  EXPECT_EQ(fo_decrypt(params_, kp.secret, ct), m);
}

TEST_F(ElGamalTest, FoRejectsTampering) {
  const KeyPair kp = keygen(params_, rng_);
  const Bytes m = random_message();
  {
    auto ct = fo_encrypt(params_, kp.pub, m, rng_);
    ct.c2[0] ^= 1;
    EXPECT_THROW(fo_decrypt(params_, kp.secret, ct), DecryptionError);
  }
  {
    auto ct = fo_encrypt(params_, kp.pub, m, rng_);
    ct.c3[5] ^= 1;
    EXPECT_THROW(fo_decrypt(params_, kp.secret, ct), DecryptionError);
  }
  {
    auto ct = fo_encrypt(params_, kp.pub, m, rng_);
    ct.c1 = ct.c1.dbl();
    EXPECT_THROW(fo_decrypt(params_, kp.secret, ct), DecryptionError);
  }
}

TEST_F(ElGamalTest, FoWrongKeyRejects) {
  const KeyPair kp1 = keygen(params_, rng_);
  const KeyPair kp2 = keygen(params_, rng_);
  const Bytes m = random_message();
  const auto ct = fo_encrypt(params_, kp1.pub, m, rng_);
  EXPECT_THROW(fo_decrypt(params_, kp2.secret, ct), DecryptionError);
}

TEST_F(ElGamalTest, FoDecryptWithSharedPoint) {
  // The threshold/mediated entry point: S = x·C1 recombined externally.
  const KeyPair kp = keygen(params_, rng_);
  const Bytes m = random_message();
  const auto ct = fo_encrypt(params_, kp.pub, m, rng_);

  // 2-of-2 additive split of x.
  const BigInt x1 = BigInt::random_unit(rng_, params_.order());
  const BigInt x2 = kp.secret.sub_mod(x1, params_.order());
  const Point s = ct.c1.mul(x1) + ct.c1.mul(x2);
  EXPECT_EQ(fo_decrypt_with_shared(params_, s, ct), m);

  // A single half is useless.
  EXPECT_THROW(fo_decrypt_with_shared(params_, ct.c1.mul(x1), ct),
               DecryptionError);
}

TEST_F(ElGamalTest, FoSerializationRoundTrip) {
  const KeyPair kp = keygen(params_, rng_);
  const Bytes m = random_message();
  const auto ct = fo_encrypt(params_, kp.pub, m, rng_);
  const auto ct2 = FoCiphertext::from_bytes(params_, ct.to_bytes());
  EXPECT_EQ(fo_decrypt(params_, kp.secret, ct2), m);
  EXPECT_THROW(FoCiphertext::from_bytes(params_, Bytes(7, 1)),
               InvalidArgument);
}

TEST_F(ElGamalTest, RejectsWrongMessageSize) {
  const KeyPair kp = keygen(params_, rng_);
  EXPECT_THROW(fo_encrypt(params_, kp.pub, Bytes(5, 0), rng_),
               InvalidArgument);
  EXPECT_THROW(cpa_encrypt(params_, kp.pub, Bytes(99, 0), rng_),
               InvalidArgument);
}

}  // namespace
}  // namespace medcrypt::elgamal
