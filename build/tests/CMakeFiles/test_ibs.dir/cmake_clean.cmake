file(REMOVE_RECURSE
  "CMakeFiles/test_ibs.dir/ibs_test.cpp.o"
  "CMakeFiles/test_ibs.dir/ibs_test.cpp.o.d"
  "test_ibs"
  "test_ibs.pdb"
  "test_ibs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ibs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
