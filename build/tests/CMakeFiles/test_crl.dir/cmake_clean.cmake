file(REMOVE_RECURSE
  "CMakeFiles/test_crl.dir/crl_test.cpp.o"
  "CMakeFiles/test_crl.dir/crl_test.cpp.o.d"
  "test_crl"
  "test_crl.pdb"
  "test_crl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
