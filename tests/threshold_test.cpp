// Tests for the threshold schemes of §3 and §5: threshold BF-IBE with
// share verification and robustness proofs, threshold GDH, threshold
// ElGamal, cheater detection and recovery.
#include <gtest/gtest.h>

#include "common/error.h"
#include "hash/drbg.h"
#include "pairing/params.h"
#include "threshold/threshold_elgamal.h"
#include "threshold/threshold_gdh.h"
#include "threshold/threshold_ibe.h"

namespace medcrypt::threshold {
namespace {

using hash::HmacDrbg;

class ThresholdIbeTest : public ::testing::Test {
 protected:
  ThresholdIbeTest()
      : rng_(110), dealer_(pairing::toy_params(), 32, 3, 5, rng_) {}

  Bytes random_message() {
    Bytes m(32);
    rng_.fill(m);
    return m;
  }

  std::vector<DecryptionShare> shares_for(const std::vector<KeyShare>& keys,
                                          const ec::Point& u, bool prove,
                                          const std::vector<int>& idx) {
    std::vector<DecryptionShare> out;
    for (int i : idx) {
      out.push_back(compute_decryption_share(dealer_.setup(), keys[i], u,
                                             prove, rng_));
    }
    return out;
  }

  HmacDrbg rng_;
  ThresholdDealer dealer_;
};

TEST_F(ThresholdIbeTest, SetupShapes) {
  const ThresholdSetup& s = dealer_.setup();
  EXPECT_EQ(s.threshold, 3u);
  EXPECT_EQ(s.players, 5u);
  EXPECT_EQ(s.verification_keys.size(), 5u);
  EXPECT_THROW(s.verification_key(0), InvalidArgument);
  EXPECT_THROW(s.verification_key(6), InvalidArgument);
}

TEST_F(ThresholdIbeTest, SetupConsistencyCheckPasses) {
  // Σ L_i P_pub^(i) = P_pub for every t-subset tried.
  const std::vector<std::vector<std::uint32_t>> subsets = {
      {1, 2, 3}, {1, 2, 4}, {3, 4, 5}, {1, 3, 5}};
  for (const auto& subset : subsets) {
    EXPECT_TRUE(verify_setup_consistency(dealer_.setup(), subset));
  }
  // Wrong-size subsets fail.
  const std::vector<std::uint32_t> small = {1, 2};
  EXPECT_FALSE(verify_setup_consistency(dealer_.setup(), small));
}

TEST_F(ThresholdIbeTest, KeySharesVerify) {
  const auto keys = dealer_.extract_shares("alice");
  ASSERT_EQ(keys.size(), 5u);
  for (const KeyShare& k : keys) {
    EXPECT_TRUE(verify_key_share(dealer_.setup(), "alice", k));
    EXPECT_FALSE(verify_key_share(dealer_.setup(), "bob", k));
  }
}

TEST_F(ThresholdIbeTest, CorruptKeyShareDetected) {
  auto keys = dealer_.extract_shares("alice");
  keys[2].value = keys[2].value.dbl();  // tamper
  EXPECT_FALSE(verify_key_share(dealer_.setup(), "alice", keys[2]));
}

TEST_F(ThresholdIbeTest, ThresholdDecryptionMatchesDirect) {
  const Bytes m = random_message();
  const auto ct =
      ibe::full_encrypt(dealer_.setup().params, "alice", m, rng_);
  const auto keys = dealer_.extract_shares("alice");

  const auto shares = shares_for(keys, ct.u, false, {0, 2, 4});
  EXPECT_EQ(threshold_full_decrypt(dealer_.setup(), shares, ct), m);

  // Cross-check against the unshared key.
  EXPECT_EQ(ibe::full_decrypt(dealer_.setup().params,
                              dealer_.extract_full_key("alice"), ct),
            m);
}

TEST_F(ThresholdIbeTest, AnyTSubsetDecrypts) {
  const Bytes m = random_message();
  const auto ct = ibe::full_encrypt(dealer_.setup().params, "alice", m, rng_);
  const auto keys = dealer_.extract_shares("alice");
  for (const auto& idx : std::vector<std::vector<int>>{
           {0, 1, 2}, {1, 3, 4}, {0, 3, 4}, {2, 3, 4}}) {
    const auto shares = shares_for(keys, ct.u, false, idx);
    EXPECT_EQ(threshold_full_decrypt(dealer_.setup(), shares, ct), m);
  }
}

TEST_F(ThresholdIbeTest, TooFewSharesRejected) {
  const Bytes m = random_message();
  const auto ct = ibe::full_encrypt(dealer_.setup().params, "alice", m, rng_);
  const auto keys = dealer_.extract_shares("alice");
  const auto shares = shares_for(keys, ct.u, false, {0, 1});
  EXPECT_THROW(combine_decryption_shares(dealer_.setup(), shares),
               InvalidArgument);
}

TEST_F(ThresholdIbeTest, DuplicateSharesRejected) {
  const Bytes m = random_message();
  const auto ct = ibe::full_encrypt(dealer_.setup().params, "alice", m, rng_);
  const auto keys = dealer_.extract_shares("alice");
  auto shares = shares_for(keys, ct.u, false, {0, 1, 1});
  EXPECT_THROW(combine_decryption_shares(dealer_.setup(), shares),
               InvalidArgument);
}

TEST_F(ThresholdIbeTest, WrongSubsetOfSharesGivesGarbage) {
  // t-1 honest shares + 1 share for another identity: FO check fails.
  const Bytes m = random_message();
  const auto ct = ibe::full_encrypt(dealer_.setup().params, "alice", m, rng_);
  const auto alice_keys = dealer_.extract_shares("alice");
  const auto bob_keys = dealer_.extract_shares("bob");
  std::vector<DecryptionShare> shares = {
      compute_decryption_share(dealer_.setup(), alice_keys[0], ct.u, false, rng_),
      compute_decryption_share(dealer_.setup(), alice_keys[1], ct.u, false, rng_),
      compute_decryption_share(dealer_.setup(), bob_keys[2], ct.u, false, rng_)};
  EXPECT_THROW(threshold_full_decrypt(dealer_.setup(), shares, ct),
               DecryptionError);
}

TEST_F(ThresholdIbeTest, RobustProofsVerify) {
  const Bytes m = random_message();
  const auto ct = ibe::full_encrypt(dealer_.setup().params, "alice", m, rng_);
  const auto keys = dealer_.extract_shares("alice");
  const auto shares = shares_for(keys, ct.u, true, {0, 1, 2, 3, 4});
  const auto valid =
      select_valid_shares(dealer_.setup(), "alice", ct.u, shares);
  EXPECT_EQ(valid.size(), 3u);
  EXPECT_EQ(threshold_full_decrypt(dealer_.setup(), valid, ct), m);
}

TEST_F(ThresholdIbeTest, CheaterShareRejectedByProofCheck) {
  const Bytes m = random_message();
  const auto ct = ibe::full_encrypt(dealer_.setup().params, "alice", m, rng_);
  const auto keys = dealer_.extract_shares("alice");
  auto shares = shares_for(keys, ct.u, true, {0, 1, 2, 3});

  // Player 1 (shares[0]) lies: swaps in a random pairing value, keeps its
  // (now inconsistent) proof.
  shares[0].value = shares[0].value.square();
  const auto valid =
      select_valid_shares(dealer_.setup(), "alice", ct.u, shares);
  ASSERT_EQ(valid.size(), 3u);
  EXPECT_EQ(valid[0].index, 2u);  // cheater excluded
  EXPECT_EQ(threshold_full_decrypt(dealer_.setup(), valid, ct), m);
}

TEST_F(ThresholdIbeTest, ForgedProofRejected) {
  const Bytes m = random_message();
  const auto ct = ibe::full_encrypt(dealer_.setup().params, "alice", m, rng_);
  const auto keys = dealer_.extract_shares("alice");
  auto shares = shares_for(keys, ct.u, true, {0, 1, 2});

  // Tamper with the proof response.
  shares[1].proof->v = shares[1].proof->v.dbl();
  EXPECT_THROW(select_valid_shares(dealer_.setup(), "alice", ct.u, shares),
               ProofError);
}

TEST_F(ThresholdIbeTest, SharesWithoutProofsRejectedInRobustMode) {
  const Bytes m = random_message();
  const auto ct = ibe::full_encrypt(dealer_.setup().params, "alice", m, rng_);
  const auto keys = dealer_.extract_shares("alice");
  const auto shares = shares_for(keys, ct.u, false, {0, 1, 2});
  EXPECT_THROW(select_valid_shares(dealer_.setup(), "alice", ct.u, shares),
               ProofError);
}

TEST_F(ThresholdIbeTest, CheaterKeyShareRecovery) {
  // §3.2: t honest players reconstruct the cheater's key share.
  const auto keys = dealer_.extract_shares("alice");
  const std::vector<KeyShare> honest = {keys[0], keys[2], keys[4]};
  const ec::Point recovered =
      recover_key_share(dealer_.setup(), honest, /*target=*/2);
  EXPECT_EQ(recovered, keys[1].value);

  // Too few honest players:
  const std::vector<KeyShare> few = {keys[0], keys[2]};
  EXPECT_THROW(recover_key_share(dealer_.setup(), few, 2), InvalidArgument);
}

TEST_F(ThresholdIbeTest, RejectsBadThresholds) {
  HmacDrbg rng(111);
  EXPECT_THROW(ThresholdDealer(pairing::toy_params(), 32, 0, 5, rng),
               InvalidArgument);
  EXPECT_THROW(ThresholdDealer(pairing::toy_params(), 32, 6, 5, rng),
               InvalidArgument);
}

// ---------------------------------------------------------------------------

class ThresholdGdhTest : public ::testing::Test {
 protected:
  ThresholdGdhTest() : rng_(112) {}
  HmacDrbg rng_;
};

TEST_F(ThresholdGdhTest, ThresholdSignatureVerifies) {
  auto dealing = gdh_threshold_setup(pairing::toy_params(), 2, 4, rng_);
  const Bytes msg = str_bytes("board resolution #7");

  std::vector<GdhSignatureShare> shares = {
      gdh_sign_share(dealing.setup, dealing.shares[1], msg),
      gdh_sign_share(dealing.setup, dealing.shares[3], msg)};
  for (const auto& s : shares) {
    EXPECT_TRUE(gdh_verify_share(dealing.setup, msg, s));
  }
  const ec::Point sig = gdh_combine_shares(dealing.setup, shares);
  EXPECT_TRUE(gdh::verify(dealing.setup.group, dealing.setup.public_key, msg, sig));
}

TEST_F(ThresholdGdhTest, CombinedSignatureEqualsDirectSignature) {
  // Determinism of BLS: every t-subset combines to the same σ = x·h(M).
  auto dealing = gdh_threshold_setup(pairing::toy_params(), 3, 5, rng_);
  const Bytes msg = str_bytes("m");
  auto make = [&](std::initializer_list<int> idx) {
    std::vector<GdhSignatureShare> shares;
    for (int i : idx) {
      shares.push_back(gdh_sign_share(dealing.setup, dealing.shares[i], msg));
    }
    return gdh_combine_shares(dealing.setup, shares);
  };
  const ec::Point s1 = make({0, 1, 2});
  const ec::Point s2 = make({2, 3, 4});
  EXPECT_EQ(s1, s2);
}

TEST_F(ThresholdGdhTest, BadShareDetected) {
  auto dealing = gdh_threshold_setup(pairing::toy_params(), 2, 3, rng_);
  const Bytes msg = str_bytes("m");
  GdhSignatureShare bad = gdh_sign_share(dealing.setup, dealing.shares[0], msg);
  bad.value = bad.value.dbl();
  EXPECT_FALSE(gdh_verify_share(dealing.setup, msg, bad));
  EXPECT_FALSE(gdh_verify_share(dealing.setup, str_bytes("other"),
                                gdh_sign_share(dealing.setup, dealing.shares[0], msg)));
}

TEST_F(ThresholdGdhTest, TooFewSharesRejected) {
  auto dealing = gdh_threshold_setup(pairing::toy_params(), 3, 4, rng_);
  const Bytes msg = str_bytes("m");
  std::vector<GdhSignatureShare> shares = {
      gdh_sign_share(dealing.setup, dealing.shares[0], msg)};
  EXPECT_THROW(gdh_combine_shares(dealing.setup, shares), InvalidArgument);
}

// ---------------------------------------------------------------------------

class ThresholdElGamalTest : public ::testing::Test {
 protected:
  ThresholdElGamalTest() : rng_(113) {
    params_.group = pairing::toy_params();
    params_.message_len = 32;
  }
  HmacDrbg rng_;
  elgamal::Params params_;
};

TEST_F(ThresholdElGamalTest, ThresholdDecryptionRoundTrip) {
  auto dealing = elgamal_threshold_setup(params_, 2, 3, rng_);
  Bytes m(32);
  rng_.fill(m);
  const auto ct =
      elgamal::fo_encrypt(dealing.setup.params, dealing.setup.public_key, m, rng_);

  std::vector<ElGamalDecryptionShare> shares = {
      elgamal_decrypt_share(dealing.shares[0], ct.c1),
      elgamal_decrypt_share(dealing.shares[2], ct.c1)};
  for (const auto& s : shares) {
    EXPECT_TRUE(elgamal_verify_share(dealing.setup, ct.c1, s));
  }
  const ec::Point shared = elgamal_combine_shares(dealing.setup, shares);
  EXPECT_EQ(elgamal::fo_decrypt_with_shared(dealing.setup.params, shared, ct), m);
}

TEST_F(ThresholdElGamalTest, BadShareDetected) {
  auto dealing = elgamal_threshold_setup(params_, 2, 3, rng_);
  Bytes m(32);
  rng_.fill(m);
  const auto ct =
      elgamal::fo_encrypt(dealing.setup.params, dealing.setup.public_key, m, rng_);
  ElGamalDecryptionShare bad = elgamal_decrypt_share(dealing.shares[0], ct.c1);
  bad.value = bad.value + dealing.setup.params.group.generator;
  EXPECT_FALSE(elgamal_verify_share(dealing.setup, ct.c1, bad));
}

TEST_F(ThresholdElGamalTest, TwoOfTwoSplitIsMediatedShape) {
  // The (2,2) instance behind mediated ElGamal.
  auto dealing = elgamal_threshold_setup(params_, 2, 2, rng_);
  Bytes m(32);
  rng_.fill(m);
  const auto ct =
      elgamal::fo_encrypt(dealing.setup.params, dealing.setup.public_key, m, rng_);
  std::vector<ElGamalDecryptionShare> shares = {
      elgamal_decrypt_share(dealing.shares[0], ct.c1),
      elgamal_decrypt_share(dealing.shares[1], ct.c1)};
  const ec::Point shared = elgamal_combine_shares(dealing.setup, shares);
  EXPECT_EQ(elgamal::fo_decrypt_with_shared(dealing.setup.params, shared, ct), m);
}

// Threshold grid sweep for the IBE.
class ThresholdIbeGrid
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ThresholdIbeGrid, DecryptsAcrossGrid) {
  const auto [t, n] = GetParam();
  HmacDrbg rng(120 + t * 16 + n);
  ThresholdDealer dealer(pairing::toy_params(), 32, t, n, rng);
  Bytes m(32);
  rng.fill(m);
  const auto ct = ibe::full_encrypt(dealer.setup().params, "grid", m, rng);
  const auto keys = dealer.extract_shares("grid");
  std::vector<DecryptionShare> shares;
  for (std::size_t i = 0; i < t; ++i) {
    shares.push_back(
        compute_decryption_share(dealer.setup(), keys[i], ct.u, false, rng));
  }
  EXPECT_EQ(threshold_full_decrypt(dealer.setup(), shares, ct), m);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThresholdIbeGrid,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 3},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{2, 5},
                      std::pair<std::size_t, std::size_t>{4, 7},
                      std::pair<std::size_t, std::size_t>{5, 9}));

}  // namespace
}  // namespace medcrypt::threshold
