// Mediated FO-ElGamal — the paper's "any 2-out-of-2 threshold scheme can
// be mediated" instantiation (§4, closing paragraphs): ElGamal padded
// with Fujisaki–Okamoto supports a SEM that turns it into a weakly
// semantically secure mediated cryptosystem.
//
//   Keygen: x = x_user + x_sem (mod q), Y = x·P.
//   Decrypt C = <C1, C2, C3>:
//     SEM:  check revocation; S_sem = x_sem·C1                → token
//     user: S = S_sem + x_user·C1; FO-decrypt with shared S.
//
// Unlike the identity-based schemes, keys here are ordinary certified
// public keys — this is the paper's bridge from SEM revocation to
// conventional PKI cryptosystems.
#pragma once

#include "elgamal/fo_transform.h"
#include "mediated/sem_server.h"
#include "sim/transport.h"

namespace medcrypt::mediated {

using bigint::BigInt;
using ec::Point;

/// SEM-side endpoint for mediated ElGamal decryption.
class ElGamalMediator : public MediatorBase<BigInt> {
 public:
  ElGamalMediator(elgamal::Params params,
                  std::shared_ptr<RevocationList> revocations);

  const elgamal::Params& params() const { return params_; }

  /// Issues the partial decryption S_sem = x_sem·C1.
  /// Throws RevokedError if `identity` is revoked.
  Point issue_token(std::string_view identity, const Point& c1) const;

 private:
  elgamal::Params params_;
};

/// User-side endpoint holding x_user and the certified public key Y.
class MediatedElGamalUser {
 public:
  MediatedElGamalUser(elgamal::Params params, std::string identity,
                      BigInt user_key, Point public_key);

  /// x_user is the additive share of the decryption exponent; scrub it
  /// when the holder dies.
  ~MediatedElGamalUser() { user_key_.wipe(); }
  MediatedElGamalUser(const MediatedElGamalUser&) = default;
  MediatedElGamalUser(MediatedElGamalUser&&) = default;
  MediatedElGamalUser& operator=(const MediatedElGamalUser&) = default;
  MediatedElGamalUser& operator=(MediatedElGamalUser&&) = default;

  const std::string& identity() const { return identity_; }
  const Point& public_key() const { return public_key_; }

  /// Mediated decryption. Throws RevokedError or DecryptionError.
  Bytes decrypt(const elgamal::FoCiphertext& ct, const ElGamalMediator& sem,
                sim::Transport* transport = nullptr) const;

 private:
  elgamal::Params params_;
  std::string identity_;
  BigInt user_key_;
  Point public_key_;
};

/// CA-side enrollment: samples the split key, installs the SEM half,
/// returns the user endpoint (whose public_key() the CA would certify).
MediatedElGamalUser enroll_elgamal_user(const elgamal::Params& params,
                                        ElGamalMediator& sem,
                                        std::string identity,
                                        RandomSource& rng);

}  // namespace medcrypt::mediated
