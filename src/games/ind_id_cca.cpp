#include "games/ind_id_cca.h"

namespace medcrypt::games {

IndIdCcaGame::IndIdCcaGame(pairing::ParamSet group, std::size_t message_len,
                           std::uint64_t seed)
    : rng_(seed), pkg_(std::move(group), message_len, rng_) {}

ec::Point IndIdCcaGame::extract(std::string_view identity) {
  if (phase_ == Phase::kFinished) {
    throw GameViolation("IND-ID-CCA: game already finished");
  }
  if (challenge_identity_ && *challenge_identity_ == identity) {
    throw GameViolation("IND-ID-CCA: cannot extract the challenge identity");
  }
  extracted_.insert(std::string(identity));
  return pkg_.extract(identity);
}

Bytes IndIdCcaGame::decrypt(std::string_view identity,
                            const ibe::FullCiphertext& ct) {
  if (phase_ == Phase::kFinished) {
    throw GameViolation("IND-ID-CCA: game already finished");
  }
  if (phase_ == Phase::kQuery2 && challenge_identity_ &&
      *challenge_identity_ == identity && challenge_ct_ &&
      challenge_ct_->to_bytes() == ct.to_bytes()) {
    throw GameViolation("IND-ID-CCA: cannot decrypt the challenge ciphertext");
  }
  return ibe::full_decrypt(pkg_.params(), pkg_.extract(identity), ct);
}

const ibe::FullCiphertext& IndIdCcaGame::challenge(std::string_view identity,
                                                   BytesView m0, BytesView m1) {
  if (phase_ != Phase::kQuery1) {
    throw GameViolation("IND-ID-CCA: challenge already issued");
  }
  if (extracted_.contains(std::string(identity))) {
    throw GameViolation("IND-ID-CCA: challenge identity was extracted");
  }
  if (m0.size() != m1.size() || m0.size() != pkg_.params().message_len) {
    throw GameViolation("IND-ID-CCA: challenge messages must be message_len");
  }
  std::uint8_t byte;
  rng_.fill(std::span(&byte, 1));
  coin_ = byte & 1;
  challenge_identity_ = std::string(identity);
  challenge_ct_ =
      ibe::full_encrypt(pkg_.params(), identity, coin_ ? m1 : m0, rng_);
  phase_ = Phase::kQuery2;
  return *challenge_ct_;
}

bool IndIdCcaGame::submit_guess(int b) {
  if (phase_ != Phase::kQuery2) {
    throw GameViolation("IND-ID-CCA: no outstanding challenge");
  }
  phase_ = Phase::kFinished;
  return b == coin_;
}

}  // namespace medcrypt::games
