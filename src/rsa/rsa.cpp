#include "rsa/rsa.h"

#include "bigint/prime.h"
#include "common/error.h"

namespace medcrypt::rsa {

PrivateKey generate_key(const KeyGenOptions& options, RandomSource& rng) {
  if (options.modulus_bits < 64) {
    throw InvalidArgument("rsa::generate_key: modulus too small");
  }
  const std::size_t half_bits = options.modulus_bits / 2;
  const BigInt one(std::uint64_t{1});

  for (;;) {
    const BigInt p = options.safe_primes
                         ? bigint::generate_safe_prime(half_bits, rng)
                         : bigint::generate_prime(half_bits, rng);
    const BigInt q = options.safe_primes
                         ? bigint::generate_safe_prime(options.modulus_bits - half_bits, rng)
                         : bigint::generate_prime(options.modulus_bits - half_bits, rng);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != options.modulus_bits) continue;
    const BigInt phi = (p - one) * (q - one);
    if (BigInt::gcd(options.public_exponent, phi) != one) continue;
    const BigInt d = options.public_exponent.mod_inverse(phi);
    return PrivateKey{PublicKey{n, options.public_exponent}, d, p, q, phi};
  }
}

BigInt public_op(const PublicKey& key, const BigInt& x) {
  if (x.is_negative() || x >= key.n) {
    throw InvalidArgument("rsa::public_op: input out of range");
  }
  return x.pow_mod(key.e, key.n);
}

BigInt private_op(const PrivateKey& key, const BigInt& x) {
  if (x.is_negative() || x >= key.pub.n) {
    throw InvalidArgument("rsa::private_op: input out of range");
  }
  return x.pow_mod(key.d, key.pub.n);
}

std::pair<BigInt, BigInt> split_exponent(const BigInt& d, const BigInt& phi,
                                         RandomSource& rng) {
  const BigInt d_user = BigInt::random_unit(rng, phi);
  const BigInt d_sem = d.mod(phi).sub_mod(d_user, phi);
  return {d_user, d_sem};
}

std::optional<std::pair<BigInt, BigInt>> factor_from_exponents(
    const BigInt& n, const BigInt& e, const BigInt& d, RandomSource& rng,
    int tries) {
  const BigInt one(std::uint64_t{1});
  // e·d - 1 is a multiple of φ(n); write it as 2^t · r with r odd.
  BigInt k = e * d - one;
  if (k.is_zero() || k.is_negative()) return std::nullopt;
  std::size_t t = 0;
  while (k.is_even()) {
    k = k >> 1;
    ++t;
  }
  const BigInt n_minus_1 = n - one;
  for (int attempt = 0; attempt < tries; ++attempt) {
    const BigInt g = BigInt::random_below(rng, n - BigInt(3)) + BigInt(2);
    BigInt x = g.pow_mod(k, n);
    if (x == one || x == n_minus_1) continue;
    for (std::size_t i = 0; i < t; ++i) {
      const BigInt y = x.mul_mod(x, n);
      if (y == one) {
        // x is a nontrivial square root of 1: gcd(x-1, n) splits n.
        const BigInt p = BigInt::gcd(x - one, n);
        if (p > one && p < n) return std::make_pair(p, n / p);
        break;
      }
      if (y == n_minus_1) break;
      x = y;
    }
  }
  return std::nullopt;
}

}  // namespace medcrypt::rsa
