#!/usr/bin/env python3
"""Validate the observability snapshots a bench run writes.

bench_sem_throughput dumps its final scrape as OBS_sem_throughput.prom
(Prometheus text format) and OBS_sem_throughput.json. CI's
metrics-smoke job runs this script against both to catch exporter
regressions: empty scrapes, unparseable output, missing core series.

Usage: tools/obs_check.py [--prom FILE] [--json FILE]
Exit codes: 0 ok, 1 validation failure, 2 usage/IO error.
"""

import argparse
import json
import re
import sys

# Series the SEM throughput bench must always produce. The sem.cache.*
# pair validates that the identity-point cache is wired into the hot
# path and exporting: a bench run always probes it (misses on first
# touch, hits on the repeat traffic).
REQUIRED_COUNTERS = [
    "sem.tokens_issued",
    "sem.cache.h1.hits",
    "sem.cache.h1.misses",
]
REQUIRED_STAGES = ["stage.token_issue_ns"]

# The limb-kernel dispatcher (src/bigint/kernels/dispatch.cpp) publishes
# one selection flag per kernel tier; exactly one must read 1.
KERNEL_GAUGES = ["core.kernel.portable", "core.kernel.avx2",
                 "core.kernel.bmi2"]

# The SLO engine (src/obs/slo.h) publishes one ppm gauge family per
# tracked objective; the throughput bench always tracks token-issue
# latency and availability. Each family must be complete: objective,
# availability, remaining budget, and at least one burn-rate window.
SLO_GAUGE_RE = re.compile(r"^sem\.slo\.([a-z0-9_]+)\.(objective_ppm|"
                          r"availability_ppm|budget_remaining_ppm|"
                          r"burn_[a-z0-9]+_ppm)$")
# Stage histograms that must retain exemplars: the bench issues tokens
# under sampled traces, so the tail samples must carry resolvable ids.
EXEMPLAR_STAGES = ["stage.token_issue_ns"]

PROM_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+]+(\s+[0-9]+)?$")


def fail(msg):
    print("obs_check: FAIL:", msg, file=sys.stderr)
    return 1


def check_prom(path):
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        print("obs_check:", e, file=sys.stderr)
        return 2

    samples = 0
    typed = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "summary", "histogram"):
                return fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        if not PROM_SAMPLE_RE.match(line):
            return fail(f"{path}:{lineno}: unparseable sample: {line!r}")
        samples += 1

    if samples == 0:
        return fail(f"{path}: no samples (empty scrape?)")
    for name in REQUIRED_COUNTERS:
        prom = "medcrypt_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)
        if prom not in typed:
            return fail(f"{path}: required series {prom} missing")
    print(f"obs_check: {path}: {samples} samples, "
          f"{len(typed)} series — ok")
    return 0


def check_json(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        print("obs_check:", e, file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        return fail(f"{path}: invalid JSON: {e}")

    for key in ("counters", "gauges", "histograms", "traces"):
        if key not in data:
            return fail(f"{path}: missing top-level key {key!r}")
    if not data["counters"]:
        return fail(f"{path}: empty counters (obs disabled in the bench?)")
    for name in REQUIRED_COUNTERS:
        if name not in data["counters"]:
            return fail(f"{path}: required counter {name!r} missing")
    for name in REQUIRED_STAGES:
        if name not in data["histograms"]:
            return fail(f"{path}: required stage histogram {name!r} missing")
        hist = data["histograms"][name]
        if hist.get("count", 0) <= 0:
            return fail(f"{path}: {name} recorded no samples")
        if not (hist["p50"] <= hist["p99"] <= hist["max"]):
            return fail(f"{path}: {name} percentiles not ordered: {hist}")
    selected = []
    for name in KERNEL_GAUGES:
        if name not in data["gauges"]:
            return fail(f"{path}: required kernel gauge {name!r} missing")
        value = data["gauges"][name]
        if value not in (0, 1):
            return fail(f"{path}: kernel gauge {name} has non-flag "
                        f"value {value}")
        if value == 1:
            selected.append(name)
    if len(selected) != 1:
        return fail(f"{path}: expected exactly one selected kernel gauge, "
                    f"got {selected or 'none'}")

    slo_families = {}
    for name in data["gauges"]:
        m = SLO_GAUGE_RE.match(name)
        if m:
            slo_families.setdefault(m.group(1), set()).add(m.group(2))
    if not slo_families:
        return fail(f"{path}: no sem.slo.* gauge families (SLO engine "
                    "not published?)")
    for slo, fields in sorted(slo_families.items()):
        for field in ("objective_ppm", "availability_ppm",
                      "budget_remaining_ppm"):
            if field not in fields:
                return fail(f"{path}: sem.slo.{slo} family missing {field}")
        if not any(f.startswith("burn_") for f in fields):
            return fail(f"{path}: sem.slo.{slo} family has no burn-rate "
                        "window gauges")

    for name in EXEMPLAR_STAGES:
        exemplars = data["histograms"].get(name, {}).get("exemplars", [])
        live = [e for e in exemplars if e.get("trace_id")]
        if not live:
            return fail(f"{path}: {name} retained no exemplars (tracing "
                        "not reaching the token-issue hot path?)")
        for e in live:
            if e.get("value", 0) <= 0:
                return fail(f"{path}: {name} exemplar with non-positive "
                            f"value: {e}")

    print(f"obs_check: {path}: {len(data['counters'])} counters, "
          f"{len(data['histograms'])} histograms, "
          f"{len(data['traces'])} traces — ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--prom", default="OBS_sem_throughput.prom")
    ap.add_argument("--json", default="OBS_sem_throughput.json")
    args = ap.parse_args()

    rc = check_prom(args.prom)
    if rc:
        return rc
    return check_json(args.json)


if __name__ == "__main__":
    sys.exit(main())
