// Tests for the modified Tate pairing: bilinearity, non-degeneracy,
// symmetry, subgroup order of outputs, and the BDH-style consistency the
// Boneh–Franklin constructions rely on.
#include <gtest/gtest.h>

#include "common/error.h"
#include "ec/hash_to_point.h"
#include "hash/drbg.h"
#include "pairing/params.h"
#include "pairing/tate.h"

namespace medcrypt::pairing {
namespace {

using bigint::BigInt;
using ec::hash_to_subgroup;
using field::Fp2;
using hash::HmacDrbg;

class PairingTest : public ::testing::Test {
 protected:
  const ParamSet& params() const { return toy_params(); }
  TatePairing engine() const { return TatePairing(params().curve); }
};

TEST_F(PairingTest, NonDegenerate) {
  const auto e = engine();
  const Fp2 g = e.pair(params().generator, params().generator);
  EXPECT_FALSE(g.is_one());
  EXPECT_FALSE(g.is_zero());
}

TEST_F(PairingTest, OutputHasOrderQ) {
  const auto e = engine();
  const Fp2 g = e.pair(params().generator, params().generator);
  EXPECT_TRUE(g.pow(params().order()).is_one());
}

TEST_F(PairingTest, InfinityMapsToOne) {
  const auto e = engine();
  EXPECT_TRUE(e.pair(params().curve->infinity(), params().generator).is_one());
  EXPECT_TRUE(e.pair(params().generator, params().curve->infinity()).is_one());
}

TEST_F(PairingTest, BilinearInFirstArgument) {
  const auto e = engine();
  HmacDrbg rng(40);
  const auto& P = params().generator;
  const BigInt a = BigInt::random_unit(rng, params().order());
  EXPECT_EQ(e.pair(P.mul(a), P), e.pair(P, P).pow(a));
}

TEST_F(PairingTest, BilinearInSecondArgument) {
  const auto e = engine();
  HmacDrbg rng(41);
  const auto& P = params().generator;
  const BigInt b = BigInt::random_unit(rng, params().order());
  EXPECT_EQ(e.pair(P, P.mul(b)), e.pair(P, P).pow(b));
}

TEST_F(PairingTest, FullBilinearity) {
  const auto e = engine();
  HmacDrbg rng(42);
  const auto& P = params().generator;
  const BigInt a = BigInt::random_unit(rng, params().order());
  const BigInt b = BigInt::random_unit(rng, params().order());
  const Fp2 lhs = e.pair(P.mul(a), P.mul(b));
  const Fp2 rhs = e.pair(P, P).pow(a.mul_mod(b, params().order()));
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PairingTest, Symmetry) {
  // The modified pairing with both arguments in G1 is symmetric.
  const auto e = engine();
  HmacDrbg rng(43);
  const auto& P = params().generator;
  const auto Q = P.mul(BigInt::random_unit(rng, params().order()));
  EXPECT_EQ(e.pair(P, Q), e.pair(Q, P));
}

TEST_F(PairingTest, AdditiveInFirstArgument) {
  const auto e = engine();
  HmacDrbg rng(44);
  const auto& P = params().generator;
  const auto A = P.mul(BigInt::random_unit(rng, params().order()));
  const auto B = P.mul(BigInt::random_unit(rng, params().order()));
  EXPECT_EQ(e.pair(A + B, P), e.pair(A, P) * e.pair(B, P));
}

TEST_F(PairingTest, BdhConsistency) {
  // The identity the Boneh–Franklin scheme uses at every decryption:
  //   ê(rP, s Q_ID) = ê(sP, Q_ID)^r
  const auto e = engine();
  HmacDrbg rng(45);
  const auto& P = params().generator;
  const BigInt& q = params().order();
  const BigInt s = BigInt::random_unit(rng, q);  // master key
  const BigInt r = BigInt::random_unit(rng, q);  // encryption randomness
  const auto Q_id = hash_to_subgroup(params().curve, "H1", str_bytes("alice"));

  const Fp2 left = e.pair(P.mul(r), Q_id.mul(s));   // user side
  const Fp2 right = e.pair(P.mul(s), Q_id).pow(r);  // sender side
  EXPECT_EQ(left, right);
}

TEST_F(PairingTest, TwoOfTwoKeySplitRecombines) {
  // The mediated-IBE identity (§4): for d_ID = d_user + d_sem,
  //   ê(U, d_user) * ê(U, d_sem) = ê(U, d_ID).
  const auto e = engine();
  HmacDrbg rng(46);
  const auto& P = params().generator;
  const BigInt& q = params().order();
  const auto d_id = hash_to_subgroup(params().curve, "H1", str_bytes("bob"))
                        .mul(BigInt::random_unit(rng, q));
  const auto d_user = P.mul(BigInt::random_unit(rng, q));
  const auto d_sem = d_id - d_user;
  const auto U = P.mul(BigInt::random_unit(rng, q));
  EXPECT_EQ(e.pair(U, d_user) * e.pair(U, d_sem), e.pair(U, d_id));
}

TEST_F(PairingTest, RejectsForeignCurvePoints) {
  const auto e = engine();
  const auto& other = named_params("mid128");
  EXPECT_THROW(e.pair(other.generator, other.generator), InvalidArgument);
}

TEST(TatePairing, RejectsNonSupersingularCurve) {
  auto f = field::PrimeField::make(BigInt(103));
  // y^2 = x^3 + x + 1 is not the supersingular family we support.
  auto c = ec::Curve::make(f, f->one(), f->one(), BigInt(7), BigInt(16));
  EXPECT_THROW(TatePairing{c}, InvalidArgument);
}

TEST(TatePairing, PaperParamsSmokeTest) {
  // One pairing at the paper's 512-bit setting to keep runtimes sane.
  const auto& params = paper_params();
  const TatePairing e(params.curve);
  HmacDrbg rng(47);
  const BigInt a = BigInt::random_unit(rng, params.order());
  const auto& P = params.generator;
  EXPECT_EQ(e.pair(P.mul(a), P), e.pair(P, P.mul(a)));
}

// --- Prepared (fixed-first-argument) pairing -------------------------------

TEST_F(PairingTest, PreparedMatchesDirectPairing) {
  const auto e = engine();
  HmacDrbg rng(49);
  const auto& P = params().generator;
  const BigInt a = BigInt::random_unit(rng, params().order());
  const Point pa = P.mul(a);
  const PreparedPairing prep = e.prepare(pa);
  EXPECT_FALSE(prep.empty());
  // One prepared program serves many second arguments.
  for (int i = 0; i < 4; ++i) {
    const BigInt b = BigInt::random_unit(rng, params().order());
    const Point q = P.mul(b);
    EXPECT_EQ(e.pair_with(prep, q), e.pair(pa, q));
  }
}

TEST_F(PairingTest, PreparedIsBilinear) {
  const auto e = engine();
  HmacDrbg rng(50);
  const auto& P = params().generator;
  const BigInt b = BigInt::random_unit(rng, params().order());
  const PreparedPairing prep = e.prepare(P);
  EXPECT_EQ(e.pair_with(prep, P.mul(b)), e.pair(P, P).pow(b));
}

TEST_F(PairingTest, PreparedInfinityPairsToOne) {
  const auto e = engine();
  const PreparedPairing prep_inf = e.prepare(params().curve->infinity());
  EXPECT_TRUE(e.pair_with(prep_inf, params().generator).is_one());
  const PreparedPairing prep = e.prepare(params().generator);
  EXPECT_TRUE(e.pair_with(prep, params().curve->infinity()).is_one());
}

TEST_F(PairingTest, PreparedRejectsMismatchesAndWipedPrograms) {
  const auto e = engine();
  // Unprepared/default program.
  EXPECT_THROW(e.pair_with(PreparedPairing(), params().generator),
               InvalidArgument);
  // Prepared for another curve.
  const auto& other = named_params("mid128");
  const TatePairing other_engine(other.curve);
  const PreparedPairing foreign = other_engine.prepare(other.generator);
  EXPECT_THROW(e.pair_with(foreign, params().generator), InvalidArgument);
  // Preparing a foreign point.
  EXPECT_THROW(e.prepare(other.generator), InvalidArgument);
  // Wiping returns the program to the empty state (the SEM relies on
  // this to scrub d_sem-derived coefficients).
  PreparedPairing prep = e.prepare(params().generator);
  EXPECT_GT(prep.step_count(), 0u);
  prep.wipe();
  EXPECT_TRUE(prep.empty());
  EXPECT_EQ(prep.step_count(), 0u);
  EXPECT_THROW(e.pair_with(prep, params().generator), InvalidArgument);
}

TEST_F(PairingTest, PairManyMatchesProductOfPairs) {
  const auto e = engine();
  HmacDrbg rng(51);
  const auto& P = params().generator;
  const BigInt a = BigInt::random_unit(rng, params().order());
  const BigInt b = BigInt::random_unit(rng, params().order());
  const BigInt c = BigInt::random_unit(rng, params().order());
  const ec::Point pa = P.mul(a), pb = P.mul(b), pc = P.mul(c);
  const ec::Point qa = P.mul(b), qb = P.mul(c), qc = P.mul(a);

  const TatePairing::PairTerm terms[] = {
      {&pa, nullptr, &qa}, {&pb, nullptr, &qb}, {&pc, nullptr, &qc}};
  EXPECT_EQ(e.pair_many(terms),
            e.pair(pa, qa) * e.pair(pb, qb) * e.pair(pc, qc));
}

TEST_F(PairingTest, PairManyAcceptsPreparedAndRawTermsMixed) {
  const auto e = engine();
  HmacDrbg rng(52);
  const auto& P = params().generator;
  const BigInt a = BigInt::random_unit(rng, params().order());
  const ec::Point pa = P.mul(a);
  const ec::Point q = P.mul(BigInt::random_unit(rng, params().order()));
  const PreparedPairing prep = e.prepare(pa);

  // The same factor contributed raw and prepared must agree, and mix
  // freely with identity factors (which contribute 1 to the product).
  const ec::Point inf = params().curve->infinity();
  const TatePairing::PairTerm terms[] = {
      {&pa, nullptr, &q}, {nullptr, &prep, &q}, {&inf, nullptr, &q}};
  EXPECT_EQ(e.pair_many(terms), e.pair(pa, q).square());
}

TEST_F(PairingTest, PairManyVerifiesBlsStyleEquation) {
  // The verification-equation shape pair_many exists for:
  // ê(P, σ) · ê(−pk, h) == 1 iff σ = x·h for pk = x·P.
  const auto e = engine();
  HmacDrbg rng(53);
  const auto& P = params().generator;
  const BigInt x = BigInt::random_unit(rng, params().order());
  const ec::Point pk = P.mul(x);
  const ec::Point h = P.mul(BigInt::random_unit(rng, params().order()));
  const ec::Point sig = h.mul(x);
  const ec::Point neg_pk = -pk;

  const TatePairing::PairTerm good[] = {{&P, nullptr, &sig},
                                        {&neg_pk, nullptr, &h}};
  EXPECT_TRUE(e.pair_many(good).is_one());

  const ec::Point bad_sig = sig + P;
  const TatePairing::PairTerm bad[] = {{&P, nullptr, &bad_sig},
                                       {&neg_pk, nullptr, &h}};
  EXPECT_FALSE(e.pair_many(bad).is_one());
}

TEST_F(PairingTest, PairManyRejectsMalformedTerms) {
  const auto e = engine();
  const auto& P = params().generator;
  const PreparedPairing prep = e.prepare(P);

  // Both p and prepared set, neither set, and a null q all throw.
  const TatePairing::PairTerm both[] = {{&P, &prep, &P}};
  EXPECT_THROW(e.pair_many(both), InvalidArgument);
  const TatePairing::PairTerm neither[] = {{nullptr, nullptr, &P}};
  EXPECT_THROW(e.pair_many(neither), InvalidArgument);
  const TatePairing::PairTerm no_q[] = {{&P, nullptr, nullptr}};
  EXPECT_THROW(e.pair_many(no_q), InvalidArgument);
  // An empty product is the empty G2 product: one.
  EXPECT_TRUE(e.pair_many({}).is_one());
}

TEST_F(PairingTest, PairWithManyMatchesIndividualPairWith) {
  const auto e = engine();
  HmacDrbg rng(54);
  const auto& P = params().generator;
  std::vector<ec::Point> bases, args;
  std::vector<PreparedPairing> preps;
  for (int i = 0; i < 5; ++i) {
    bases.push_back(P.mul(BigInt::random_unit(rng, params().order())));
    args.push_back(P.mul(BigInt::random_unit(rng, params().order())));
    preps.push_back(e.prepare(bases.back()));
  }
  std::vector<const PreparedPairing*> pp;
  std::vector<const ec::Point*> qq;
  for (int i = 0; i < 5; ++i) {
    pp.push_back(&preps[static_cast<std::size_t>(i)]);
    qq.push_back(&args[static_cast<std::size_t>(i)]);
  }

  // The batch path shares one Fp2 batch inversion across the final
  // exponentiations; every element must still equal the single path.
  const std::vector<Fp2> got = e.pair_with_many(pp, qq);
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(got[idx], e.pair_with(preps[idx], args[idx])) << "term " << i;
    EXPECT_EQ(got[idx], e.pair(bases[idx], args[idx])) << "term " << i;
  }
}

TEST_F(PairingTest, FinalExponentiationBatchMatchesSingles) {
  const auto e = engine();
  HmacDrbg rng(55);
  const auto& P = params().generator;
  std::vector<Fp2> millers, expected;
  for (int i = 0; i < 4; ++i) {
    const ec::Point q = P.mul(BigInt::random_unit(rng, params().order()));
    millers.push_back(e.miller_with(e.prepare(P), q));
    expected.push_back(e.pair(P, q));
  }
  e.final_exponentiation_batch(millers);
  EXPECT_EQ(millers, expected);
}

// Pairing laws across parameter sets.
class PairingParamSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PairingParamSweep, BilinearityHolds) {
  const auto& params = named_params(GetParam());
  const TatePairing e(params.curve);
  HmacDrbg rng(48);
  const auto& P = params.generator;
  const BigInt a = BigInt::random_unit(rng, params.order());
  const BigInt b = BigInt::random_unit(rng, params.order());
  EXPECT_EQ(e.pair(P.mul(a), P.mul(b)),
            e.pair(P, P).pow(a.mul_mod(b, params.order())));
}

INSTANTIATE_TEST_SUITE_P(Sets, PairingParamSweep,
                         ::testing::Values("toy64", "mid128"));

}  // namespace
}  // namespace medcrypt::pairing
