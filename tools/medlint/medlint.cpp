// medlint — secret-hygiene static analysis for the medcrypt tree.
//
// The paper's security model (Libert–Quisquater §4–§5) rests on each
// secret being *split*: the SEM holds d_ID,sem / x_sem, the user holds
// d_ID,user / x_user, and threshold players hold Shamir shares f(i).
// Any half-key that leaks through a non-wiped buffer or a variable-time
// comparison silently voids the revocation guarantee, so this checker
// enforces the repository's secret-handling rules over every PR:
//
//   secret-memcmp      byte-wise libc comparisons (memcmp/strcmp/...)
//                      are banned; secret comparisons go through
//                      medcrypt::ct_equal (timing-safe), public ones
//                      through std::equal/operator== on containers.
//   secret-equality    operator==/!= applied to an identifier that names
//                      secret material (key/tag/token/share/...) — use
//                      ct_equal on byte views instead.
//   secret-vector      raw Bytes / std::vector<uint8_t> declarations
//                      with secret-bearing names — use SecureBuffer
//                      (zero-on-destroy) from common/secure_buffer.h.
//   banned-randomness  direct rand()/srand()/std::random_device/
//                      std::mt19937 use; all randomness flows through
//                      RandomSource so tests stay deterministic and
//                      entropy handling stays auditable.
//   missing-wipe-dtor  known secret-bearing types must wipe in their
//                      destructor (call .wipe() / hold SecureBuffer).
//   secret-return-by-value
//                      a function returning a SEM key-half type
//                      (KeyHalf, IbeSemKey, ...) by value copies stored
//                      secret material onto every caller's stack; lend
//                      `const T&` inside a guarded scope instead (the
//                      MediatorBase::with_key pattern). Factories that
//                      *create* a secret (make_/generate_/extract_...)
//                      are exempt — transferring a newly born secret to
//                      its owner requires a by-value return.
//
// Scanning is lexical: comments and string/char literals are stripped
// first, then line-based patterns run over the residue. Lexical analysis
// has false positives by design — vetted exceptions go in the allowlist
// file (one `path-suffix:check-id` per line), never by weakening a rule.
//
// Usage:
//   medlint --src <dir> [--src <dir> ...] [--allowlist <file>] [--verbose]
//   medlint --list-checks
//
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// diagnostics
// ---------------------------------------------------------------------------

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string check;
  std::string message;
};

struct CheckInfo {
  const char* id;
  const char* summary;
};

constexpr CheckInfo kChecks[] = {
    {"secret-memcmp",
     "libc byte comparison (memcmp/bcmp/strcmp/strncmp); use "
     "medcrypt::ct_equal for secret data"},
    {"secret-equality",
     "operator==/!= on a secret-named buffer; use medcrypt::ct_equal"},
    {"secret-vector",
     "raw Bytes/std::vector<uint8_t> holding secret material; use "
     "medcrypt::SecureBuffer"},
    {"banned-randomness",
     "direct rand()/std::random_device/std::mt19937; route randomness "
     "through medcrypt::RandomSource"},
    {"missing-wipe-dtor",
     "secret-bearing type lacks a wiping destructor (call wipe() or hold "
     "SecureBuffer members)"},
    {"secret-return-by-value",
     "SEM key-half type returned by value, leaving an unwiped copy on "
     "the caller's stack; lend const T& in a guarded scope (with_key "
     "pattern)"},
};

// Types whose definitions must wipe their secrets on destruction. Names
// match the paper's secret holders: §3 Shamir/threshold shares, §4
// d_ID halves, §5 x halves, the DRBG state, and RSA private material.
const std::set<std::string> kSecretTypes = {
    "PrivateKey",     "SplitKey",       "KeyPair",        "KeyShare",
    "GdhKeyShare",    "ElGamalKeyShare", "Sharing",       "HmacDrbg",
    "Pkg",            "DkgParticipant", "ThresholdDealer", "SemHalfKey",
    "MRsaKeygenResult", "MRsaSemRecord", "UserKeys",      "IbeSemKey",
    "IbsSemKey",      "LimbStore",
};

// Identifier components that mark a name as secret for *comparison*
// purposes (timing): includes tags and MACs, which are public on the
// wire but must still be compared in constant time.
const std::set<std::string> kSecretWords = {
    "key",    "keys",   "secret", "secrets", "seed",     "seeds",
    "token",  "tokens", "tag",    "tags",    "mac",      "macs",
    "share",  "shares", "priv",   "password", "passwd",
};

// Components that mark a name as secret for *storage* purposes
// (confidentiality): excludes tag/mac/token — those live in ciphertexts
// and wire messages, so holding them in plain Bytes is fine.
const std::set<std::string> kSecretStorageWords = {
    "key",   "keys",   "secret",   "secrets",  "seed",   "seeds",
    "share", "shares", "priv",     "password", "passwd", "half",
    "halves",
};

// Leading components that mark a value as blinded/public even when a
// secret word follows (masked_seed is a ciphertext component).
const std::set<std::string> kPublicPrefixes = {"masked", "pub", "public"};

// ---------------------------------------------------------------------------
// lexical stripping: comments and string/char literals -> spaces
// ---------------------------------------------------------------------------

// Removes comments and literal contents while preserving line structure,
// so patterns never fire on documentation or log-message text. Handles
// //, /*...*/, "..." and '...' with escapes, and plain R"(...)" raw
// strings (no custom delimiters — the tree does not use them).
std::vector<std::string> strip_code(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  enum class State { kCode, kBlockComment, kRawString };
  State state = State::kCode;
  for (const std::string& line : lines) {
    std::string stripped;
    stripped.reserve(line.size());
    for (std::size_t i = 0; i < line.size();) {
      if (state == State::kBlockComment) {
        if (line.compare(i, 2, "*/") == 0) {
          state = State::kCode;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (state == State::kRawString) {
        if (line.compare(i, 2, ")\"") == 0) {
          state = State::kCode;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;
      if (line.compare(i, 2, "/*") == 0) {
        state = State::kBlockComment;
        i += 2;
        continue;
      }
      if (line.compare(i, 3, "R\"(") == 0) {
        state = State::kRawString;
        i += 3;
        continue;
      }
      if (line[i] == '"' || line[i] == '\'') {
        const char quote = line[i];
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
          } else if (line[i] == quote) {
            ++i;
            break;
          } else {
            ++i;
          }
        }
        stripped.push_back(quote);  // keep delimiters as tokens
        stripped.push_back(quote);
        continue;
      }
      stripped.push_back(line[i]);
      ++i;
    }
    out.push_back(std::move(stripped));
  }
  return out;
}

// ---------------------------------------------------------------------------
// name classification
// ---------------------------------------------------------------------------

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// "pkg.master_key_" -> "master_key_"; "sem->d_sem" -> "d_sem".
std::string last_member(const std::string& path) {
  std::size_t pos = path.size();
  for (const char* sep : {".", "->", "::"}) {
    const std::size_t p = path.rfind(sep);
    if (p != std::string::npos) {
      const std::size_t after = p + std::string(sep).size();
      pos = std::min(pos, path.size() - after);
    }
  }
  return path.substr(path.size() - pos);
}

// Splits snake_case/camelCase into lowercase components.
std::vector<std::string> name_components(const std::string& name) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : name) {
    if (c == '_') {
      if (!cur.empty()) parts.push_back(to_lower(cur));
      cur.clear();
    } else if (std::isupper(static_cast<unsigned char>(c)) && !cur.empty() &&
               std::islower(static_cast<unsigned char>(cur.back()))) {
      parts.push_back(to_lower(cur));
      cur.assign(1, c);
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(to_lower(cur));
  return parts;
}

bool is_secret_name(const std::string& identifier_path) {
  for (const std::string& part : name_components(last_member(identifier_path))) {
    if (kSecretWords.count(part)) return true;
  }
  return false;
}

bool is_secret_storage_name(const std::string& name) {
  const std::vector<std::string> parts = name_components(name);
  if (!parts.empty() && kPublicPrefixes.count(parts.front())) return false;
  for (const std::string& part : parts) {
    if (kSecretStorageWords.count(part)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// per-line checks
// ---------------------------------------------------------------------------

const std::regex kMemcmpRe(R"(\b(memcmp|bcmp|strcmp|strncmp)\s*\()");
// Note: a bare `random(` is NOT banned — the field/point layers expose
// `Fp random(RandomSource&)` methods, which are exactly the sanctioned
// path. Only the std/libc generators are.
const std::regex kRandomRe(
    R"((std::random_device|std::mt19937|std::minstd_rand|\bsrand\s*\(|\brand\s*\(|\bdrand48\b))");
// Terminators deliberately exclude '(' so `Bytes make_key(...)` function
// declarations and paren-initialized locals don't match; members and
// assignments (`Bytes key_;`, `Bytes k = ...`) do.
const std::regex kSecretVecRe(
    R"(\b(?:medcrypt::)?(Bytes|std::vector<\s*(?:std::)?uint8_t\s*>)\s+([A-Za-z_]\w*)\s*[;={])");
const std::regex kCompareRe(
    R"(([A-Za-z_]\w*(?:(?:\.|->|::)[A-Za-z_]\w*)*)\s*(==|!=)\s*([A-Za-z_]\w*(?:(?:\.|->|::)[A-Za-z_]\w*)*|[0-9]\w*|""|''))");
// Function declaration/definition shape: optional specifiers, a plain
// (possibly qualified/templated) return type with no '&'/'*', then the
// function name directly followed by '('. Lexical by design: multi-line
// declarations with the return type on its own line are not seen (the
// tree's style keeps them on one line).
const std::regex kFnDeclRe(
    R"(^\s*(?:(?:virtual|static|inline|constexpr|explicit|friend|const)\s+)*((?:::)?[A-Za-z_][\w:]*(?:<[^;()&*]*>)?)\s+([A-Za-z_]\w*)\s*\()");

// Types that hold a SEM-side key half (sem_server.h's lend-don't-copy
// contract): a by-value return of one copies registry secrets onto the
// caller's stack. "KeyHalf" is MediatorBase's template parameter, so the
// generic machinery itself stays covered. Ubiquitous value types
// (BigInt, Point, SecureBuffer) are deliberately absent — they carry
// public values far more often than secrets, and SecureBuffer wipes
// itself, so flagging them would be all noise.
const std::set<std::string> kSecretReturnTypes = {
    "KeyHalf",
    "IbeSemKey",
    "SemHalfKey",
    "MRsaSemRecord",
};

// True if any identifier token of a (possibly qualified/templated)
// return-type spelling names a secret key-half type, so that
// `std::vector<KeyHalf>` and `mediated::IbeSemKey` are caught too.
bool is_secret_return_type(const std::string& type_spelling) {
  std::string token;
  for (const char c : type_spelling + " ") {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      token.push_back(c);
    } else {
      if (kSecretReturnTypes.count(token)) return true;
      token.clear();
    }
  }
  return false;
}

// Leading name components that mark a function as a *factory*: it mints
// a fresh secret and must hand it to the new owner by value (the caller
// becomes responsible for wiping). Accessors of *stored* secrets have no
// such excuse.
const std::set<std::string> kFactoryVerbs = {
    "make",    "create", "generate",    "derive",  "extract", "issue",
    "split",   "enroll", "keygen",      "gen",     "random",  "sample",
    "reconstruct",       "recover",     "from",    "to",      "parse",
    "decrypt", "encrypt", "sign",       "unwrap",  "wrap",
};

bool is_benign_operand(const std::string& op) {
  if (op.empty()) return true;
  if (std::isdigit(static_cast<unsigned char>(op[0]))) return true;  // literal
  if (op == "nullptr" || op == "true" || op == "false" || op == "\"\"" ||
      op == "''") {
    return true;
  }
  const std::string last = last_member(op);
  // Iterator/size protocol names compare handles, not contents.
  if (last == "end" || last == "begin" || last == "size" || last == "empty" ||
      last == "length" || last == "npos") {
    return true;
  }
  // Quantity-valued names (message_len, kSessionKeyLen, share_count) are
  // public metadata even when a secret word appears earlier in the name.
  const std::vector<std::string> parts = name_components(last);
  if (parts.empty()) return false;
  const std::string& tail = parts.back();
  return tail == "len" || tail == "size" || tail == "count" ||
         tail == "bits" || tail == "bytes" || tail == "index";
}

void check_line(const std::string& file, std::size_t lineno,
                const std::string& code, std::vector<Violation>& out) {
  std::smatch m;
  if (std::regex_search(code, m, kMemcmpRe)) {
    out.push_back({file, lineno, "secret-memcmp",
                   m[1].str() + "() is banned: byte comparisons on "
                   "key/share/token material leak timing; use "
                   "medcrypt::ct_equal (common/bytes.h)"});
  }
  if (std::regex_search(code, m, kRandomRe)) {
    out.push_back({file, lineno, "banned-randomness",
                   "direct libc/std randomness is banned outside the "
                   "RandomSource implementation; take a RandomSource& "
                   "(common/random_source.h)"});
  }
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kSecretVecRe);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[2].str();
    if (is_secret_storage_name(name)) {
      out.push_back({file, lineno, "secret-vector",
                     "'" + (*it)[1].str() + " " + name +
                         "' holds secret material in a non-wiping buffer; "
                         "use medcrypt::SecureBuffer "
                         "(common/secure_buffer.h)"});
    }
  }
  if (std::regex_search(code, m, kFnDeclRe)) {
    const std::string ret = m[1].str();
    const std::string name = m[2].str();
    // Both conjuncts are needed: the type gate keeps ubiquitous value
    // types quiet, and the secret-named gate skips paren-initialized
    // locals (`IbeSemKey record(...)`) that the declaration regex
    // cannot tell apart from a function signature.
    if (is_secret_return_type(ret) && is_secret_storage_name(name)) {
      const std::vector<std::string> parts = name_components(name);
      if (parts.empty() || !kFactoryVerbs.count(parts.front())) {
        out.push_back({file, lineno, "secret-return-by-value",
                       "'" + ret + " " + name +
                           "(...)' returns a SEM key-half type by value; "
                           "every call leaves an unwiped copy on the "
                           "caller's stack — lend a const reference inside "
                           "a guarded scope (MediatorBase::with_key) or "
                           "allowlist if this is a vetted factory"});
      }
    }
  }
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kCompareRe);
       it != std::sregex_iterator(); ++it) {
    const std::string lhs = (*it)[1].str();
    const std::string rhs = (*it)[3].str();
    if (is_benign_operand(lhs) || is_benign_operand(rhs)) continue;
    if (is_secret_name(lhs) || is_secret_name(rhs)) {
      out.push_back({file, lineno, "secret-equality",
                     "'" + lhs + " " + (*it)[2].str() + " " + rhs +
                         "' compares secret-named values with a "
                         "short-circuiting operator; use medcrypt::ct_equal "
                         "on byte views"});
    }
  }
}

// ---------------------------------------------------------------------------
// struct/class body check: missing-wipe-dtor
// ---------------------------------------------------------------------------

const std::regex kTypeDefRe(R"(^\s*(?:struct|class)\s+([A-Za-z_]\w*))");

void check_secret_types(const std::string& file,
                        const std::vector<std::string>& code,
                        std::vector<Violation>& out) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(code[i], m, kTypeDefRe)) continue;
    const std::string name = m[1].str();
    if (!kSecretTypes.count(name)) continue;

    // Find the opening brace; a ';' first means a forward declaration.
    std::size_t line = i;
    std::size_t col = static_cast<std::size_t>(m.position(0)) + m.length(0);
    int depth = 0;
    bool found_open = false;
    bool fwd_decl = false;
    while (line < code.size() && !found_open && !fwd_decl) {
      for (; col < code[line].size(); ++col) {
        const char c = code[line][col];
        if (c == '{') {
          found_open = true;
          ++col;
          break;
        }
        if (c == ';') {
          fwd_decl = true;
          break;
        }
      }
      if (!found_open && !fwd_decl) {
        ++line;
        col = 0;
      }
    }
    if (!found_open) continue;

    // Collect the brace-matched body.
    std::string body;
    depth = 1;
    for (; line < code.size() && depth > 0; ++line, col = 0) {
      for (; col < code[line].size(); ++col) {
        const char c = code[line][col];
        if (c == '{') ++depth;
        if (c == '}') {
          --depth;
          if (depth == 0) break;
        }
        body.push_back(c);
      }
      body.push_back('\n');
    }

    const bool wipes = body.find("~" + name) != std::string::npos &&
                       (body.find("wipe") != std::string::npos ||
                        body.find("SecureBuffer") != std::string::npos);
    const bool delegates = body.find("SecureBuffer") != std::string::npos &&
                           body.find("~" + name) == std::string::npos;
    if (!wipes && !delegates) {
      out.push_back(
          {file, i + 1, "missing-wipe-dtor",
           "secret-bearing type '" + name +
               "' must zeroize on destruction: declare ~" + name +
               "() calling wipe() on secret members, or hold them in "
               "SecureBuffer"});
    }
  }
}

// ---------------------------------------------------------------------------
// allowlist
// ---------------------------------------------------------------------------

struct AllowEntry {
  std::string path_suffix;
  std::string check;  // "*" allows every check for the file
};

std::vector<AllowEntry> load_allowlist(const std::string& path) {
  std::vector<AllowEntry> entries;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "medlint: cannot open allowlist: " << path << "\n";
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back())))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start])))
      ++start;
    line.erase(0, start);
    if (line.empty()) continue;
    const std::size_t colon = line.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "medlint: malformed allowlist entry (want path:check): "
                << line << "\n";
      std::exit(2);
    }
    entries.push_back({line.substr(0, colon), line.substr(colon + 1)});
  }
  return entries;
}

bool is_allowlisted(const Violation& v, const std::vector<AllowEntry>& allow) {
  for (const AllowEntry& e : allow) {
    if (e.check != "*" && e.check != v.check) continue;
    if (v.file.size() >= e.path_suffix.size() &&
        v.file.compare(v.file.size() - e.path_suffix.size(),
                       e.path_suffix.size(), e.path_suffix) == 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// driver
// ---------------------------------------------------------------------------

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".h" || ext == ".hpp";
}

std::vector<std::string> read_lines(const fs::path& p) {
  std::ifstream in(p);
  if (!in) {
    std::cerr << "medlint: cannot read " << p << "\n";
    std::exit(2);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(std::move(line));
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> src_dirs;
  std::string allowlist_path;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--src" && i + 1 < argc) {
      src_dirs.push_back(argv[++i]);
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-checks") {
      for (const CheckInfo& c : kChecks)
        std::cout << c.id << "\t" << c.summary << "\n";
      return 0;
    } else {
      std::cerr << "usage: medlint --src <dir> [--src <dir>...] "
                   "[--allowlist <file>] [--verbose] [--list-checks]\n";
      return 2;
    }
  }
  if (src_dirs.empty()) {
    std::cerr << "medlint: no --src directory given\n";
    return 2;
  }

  std::vector<AllowEntry> allow;
  if (!allowlist_path.empty()) allow = load_allowlist(allowlist_path);

  std::vector<fs::path> files;
  for (const std::string& dir : src_dirs) {
    if (!fs::is_directory(dir)) {
      std::cerr << "medlint: not a directory: " << dir << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && scannable(entry.path()))
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  std::size_t allowlisted = 0;
  for (const fs::path& file : files) {
    const std::vector<std::string> code = strip_code(read_lines(file));
    std::vector<Violation> found;
    for (std::size_t i = 0; i < code.size(); ++i)
      check_line(file.string(), i + 1, code[i], found);
    check_secret_types(file.string(), code, found);
    for (Violation& v : found) {
      if (is_allowlisted(v, allow)) {
        ++allowlisted;
        if (verbose)
          std::cout << v.file << ":" << v.line << ": allowlisted [" << v.check
                    << "]\n";
      } else {
        violations.push_back(std::move(v));
      }
    }
  }

  for (const Violation& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.check << "] "
              << v.message << "\n";
  }
  std::cout << "medlint: scanned " << files.size() << " file(s), "
            << violations.size() << " violation(s), " << allowlisted
            << " allowlisted\n";
  return violations.empty() ? 0 : 1;
}
