// Log-linear (HDR-style) latency histogram.
//
// Bucketing: values below 16 get width-1 buckets; every power-of-two
// octave above that is split into 16 linear sub-buckets, so relative
// bucket width is bounded by 1/16 ≈ 6% everywhere — tight enough for
// p50/p90/p99 reporting without per-sample allocation or sorting.
// 40 octave groups cover [0, ~8.4e12) ns (~2.3 hours); anything larger
// saturates into the last bucket (max_ still records the true value).
//
// Recording is a handful of relaxed atomic adds — safe from any number
// of threads, no locks. Scrapes copy the buckets into a plain Snapshot;
// snapshots are mergeable (elementwise, associative) so sharded or
// per-instance histograms aggregate exactly.
//
// This class is real even when MEDCRYPT_OBS=OFF — it is pure data-
// structure math with no instrumentation role of its own; the compile-
// time gate lives in the Span/Counter call sites that feed it.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/obs.h"

namespace medcrypt::obs {

class Histogram {
 public:
  static constexpr std::size_t kSubBits = 4;
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;  // 16
  static constexpr std::size_t kGroups = 40;
  static constexpr std::size_t kBucketCount = kSub * kGroups;  // 640

  /// Bucket index of `v`. Total over the value range, monotone, and
  /// exact (idx == v) for v < 2*kSub; saturates at kBucketCount - 1.
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned msb = static_cast<unsigned>(std::bit_width(v)) - 1;
    const std::size_t group = msb - kSubBits + 1;
    if (group >= kGroups) return kBucketCount - 1;
    const std::size_t sub =
        static_cast<std::size_t>(v >> (msb - kSubBits)) & (kSub - 1);
    return group * kSub + sub;
  }

  /// Smallest value that maps to bucket `idx` (idx < kBucketCount).
  static std::uint64_t bucket_lower_bound(std::size_t idx) {
    if (idx < kSub) return idx;
    const std::size_t group = idx / kSub;
    const std::size_t sub = idx % kSub;
    return static_cast<std::uint64_t>(kSub + sub) << (group - 1);
  }

  /// Exemplar: one concrete sample whose recording thread had a sampled
  /// trace in flight. The histogram keeps the kExemplarSlots *largest*
  /// such samples, so the retained trace ids are precisely the ones that
  /// explain the tail ("show me a p99 token-issue trace"). trace_id == 0
  /// marks an empty slot.
  struct Exemplar {
    std::uint64_t value = 0;
    std::uint64_t trace_id = 0;
  };
  static constexpr std::size_t kExemplarSlots = 4;

  /// Point-in-time copy of a histogram; plain values, freely mergeable.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBucketCount> buckets{};
    /// Largest traced samples, descending by value; empty slots trail.
    std::array<Exemplar, kExemplarSlots> exemplars{};

    /// Elementwise accumulation; associative and commutative, so any
    /// merge order over any partition of the samples yields the same
    /// aggregate.
    void merge(const Snapshot& other);

    /// Quantile estimate with linear interpolation inside the selected
    /// bucket; q in [0, 1]. Returns 0 for an empty histogram and never
    /// exceeds the recorded max.
    double percentile(double q) const;

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev && !max_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
    // Exemplar capture only when a sampled trace is in flight on this
    // thread (rare by construction); current_trace_id() is a constant 0
    // in MEDCRYPT_OBS=OFF builds, so the whole probe folds away.
    if (const std::uint64_t tid = current_trace_id()) note_exemplar(v, tid);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  Snapshot snapshot() const;

  /// Zeroes all cells. Not atomic with respect to concurrent record()
  /// calls; callers quiesce recorders first (bench/test convenience).
  void reset();

 private:
  /// Offers (v, trace_id) to the exemplar slots: replaces the current
  /// minimum if v is at least as large. Guarded by a try-only spinlock —
  /// a contended recorder drops its exemplar instead of spinning, so the
  /// hot path never waits; only snapshot()/reset() spin (cold paths, and
  /// the critical section is a few loads/stores).
  void note_exemplar(std::uint64_t v, std::uint64_t trace_id);

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  // Exemplar slots; mutable so the const snapshot() can take the lock.
  mutable std::atomic_flag ex_lock_;
  mutable std::array<Exemplar, kExemplarSlots> ex_slots_{};
};

}  // namespace medcrypt::obs
