// Tests for the prime field Fp and the quadratic extension Fp2.
#include <gtest/gtest.h>

#include "common/error.h"
#include "field/fp.h"
#include "field/fp2.h"
#include "hash/drbg.h"

namespace medcrypt::field {
namespace {

using bigint::BigInt;
using hash::HmacDrbg;

std::shared_ptr<const PrimeField> small_field() {
  return PrimeField::make(BigInt(103));  // 103 ≡ 3 (mod 4)
}

std::shared_ptr<const PrimeField> big_field() {
  // 2^255 - 19 is prime; ≡ 1 (mod 4), exercising Tonelli–Shanks.
  return PrimeField::make(BigInt::from_hex(
      "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed"));
}

std::shared_ptr<const PrimeField> big_field_3mod4() {
  // secp256k1 prime, ≡ 3 (mod 4).
  return PrimeField::make(BigInt::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"));
}

TEST(Fp, BasicArithmetic) {
  auto f = small_field();
  const Fp a = f->from_u64(50), b = f->from_u64(60);
  EXPECT_EQ((a + b).to_bigint(), BigInt(7));    // 110 mod 103
  EXPECT_EQ((a - b).to_bigint(), BigInt(93));   // -10 mod 103
  EXPECT_EQ((a * b).to_bigint(), BigInt(3000 % 103));
  EXPECT_EQ((-a).to_bigint(), BigInt(53));
  EXPECT_EQ((-f->zero()).to_bigint(), BigInt(0));
}

TEST(Fp, IdentityAndZero) {
  auto f = small_field();
  EXPECT_TRUE(f->zero().is_zero());
  EXPECT_TRUE(f->one().is_one());
  const Fp a = f->from_u64(42);
  EXPECT_EQ(a + f->zero(), a);
  EXPECT_EQ(a * f->one(), a);
  EXPECT_TRUE((a * f->zero()).is_zero());
}

TEST(Fp, FromBigIntReduces) {
  auto f = small_field();
  EXPECT_EQ(f->from_bigint(BigInt(1030)).to_bigint(), BigInt(0));
  EXPECT_EQ(f->from_bigint(BigInt(-1)).to_bigint(), BigInt(102));
}

TEST(Fp, InverseProperty) {
  auto f = big_field_3mod4();
  HmacDrbg rng(20);
  for (int i = 0; i < 25; ++i) {
    Fp a = f->random(rng);
    if (a.is_zero()) continue;
    EXPECT_TRUE((a * a.inverse()).is_one());
  }
  EXPECT_THROW(f->zero().inverse(), InvalidArgument);
}

TEST(Fp, PowMatchesRepeatedMul) {
  auto f = small_field();
  const Fp a = f->from_u64(5);
  Fp acc = f->one();
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(a.pow(BigInt(e)), acc);
    acc *= a;
  }
}

TEST(Fp, FermatLittleTheorem) {
  auto f = big_field();
  HmacDrbg rng(21);
  const BigInt exp = f->modulus() - BigInt(1);
  for (int i = 0; i < 5; ++i) {
    Fp a = f->random(rng);
    if (a.is_zero()) continue;
    EXPECT_TRUE(a.pow(exp).is_one());
  }
}

TEST(Fp, SqrtOn3Mod4Field) {
  auto f = big_field_3mod4();
  HmacDrbg rng(22);
  for (int i = 0; i < 20; ++i) {
    const Fp a = f->random(rng);
    const Fp sq = a.square();
    EXPECT_TRUE(sq.is_square());
    const Fp root = sq.sqrt();
    EXPECT_TRUE(root == a || root == -a);
  }
}

TEST(Fp, SqrtTonelliShanks) {
  auto f = big_field();  // p ≡ 1 (mod 4)
  HmacDrbg rng(23);
  for (int i = 0; i < 20; ++i) {
    const Fp a = f->random(rng);
    const Fp sq = a.square();
    const Fp root = sq.sqrt();
    EXPECT_TRUE(root == a || root == -a) << "iteration " << i;
  }
}

TEST(Fp, NonSquareThrows) {
  auto f = small_field();
  int non_squares = 0;
  for (int v = 1; v < 103; ++v) {
    const Fp a = f->from_u64(v);
    if (!a.is_square()) {
      ++non_squares;
      EXPECT_THROW(a.sqrt(), InvalidArgument);
    } else {
      const Fp r = a.sqrt();
      EXPECT_EQ(r.square(), a);
    }
  }
  EXPECT_EQ(non_squares, 51);  // (p-1)/2 non-squares
}

TEST(Fp, BytesRoundTrip) {
  auto f = big_field_3mod4();
  HmacDrbg rng(24);
  for (int i = 0; i < 10; ++i) {
    const Fp a = f->random(rng);
    const Bytes b = a.to_bytes();
    EXPECT_EQ(b.size(), f->byte_size());
    EXPECT_EQ(f->from_bytes(b), a);
  }
  EXPECT_THROW(f->from_bytes(Bytes(3, 0)), InvalidArgument);
  // Value >= p rejected:
  Bytes too_big(f->byte_size(), 0xff);
  EXPECT_THROW(f->from_bytes(too_big), InvalidArgument);
}

TEST(Fp, MixedFieldOperationThrows) {
  auto f1 = small_field();
  auto f2 = big_field();
  EXPECT_THROW(f1->one() + f2->one(), InvalidArgument);
  EXPECT_THROW(Fp{} + f1->one(), InvalidArgument);
}

TEST(Fp2, ComplexArithmetic) {
  auto f = small_field();
  const Fp2 x(f->from_u64(3), f->from_u64(5));   // 3 + 5i
  const Fp2 y(f->from_u64(7), f->from_u64(11));  // 7 + 11i
  // (3+5i)(7+11i) = 21 - 55 + (33+35)i = -34 + 68i
  const Fp2 prod = x * y;
  EXPECT_EQ(prod.re().to_bigint(), BigInt(-34).mod(BigInt(103)));
  EXPECT_EQ(prod.im().to_bigint(), BigInt(68));
  EXPECT_EQ((x + y).re().to_bigint(), BigInt(10));
  EXPECT_EQ((x - y).im().to_bigint(), BigInt(-6).mod(BigInt(103)));
}

TEST(Fp2, SquareMatchesMul) {
  auto f = big_field_3mod4();
  HmacDrbg rng(25);
  for (int i = 0; i < 20; ++i) {
    const Fp2 x = Fp2::random(f, rng);
    EXPECT_EQ(x.square(), x * x);
  }
}

TEST(Fp2, InverseProperty) {
  auto f = big_field_3mod4();
  HmacDrbg rng(26);
  for (int i = 0; i < 20; ++i) {
    const Fp2 x = Fp2::random(f, rng);
    if (x.is_zero()) continue;
    EXPECT_TRUE((x * x.inverse()).is_one());
  }
  EXPECT_THROW(Fp2(f->zero(), f->zero()).inverse(), InvalidArgument);
}

TEST(Fp2, ConjugateIsFrobenius) {
  // For p ≡ 3 (mod 4), x^p = conjugate(x) in F_{p^2}.
  auto f = small_field();
  HmacDrbg rng(27);
  for (int i = 0; i < 10; ++i) {
    const Fp2 x = Fp2::random(f, rng);
    EXPECT_EQ(x.pow(f->modulus()), x.conjugate());
  }
}

TEST(Fp2, NormIsMultiplicative) {
  auto f = big_field_3mod4();
  HmacDrbg rng(28);
  const Fp2 x = Fp2::random(f, rng), y = Fp2::random(f, rng);
  EXPECT_EQ((x * y).norm(), x.norm() * y.norm());
}

TEST(Fp2, PowAddsExponents) {
  auto f = small_field();
  HmacDrbg rng(29);
  const Fp2 x = Fp2::random(f, rng);
  EXPECT_EQ(x.pow(BigInt(13)) * x.pow(BigInt(29)), x.pow(BigInt(42)));
  EXPECT_TRUE(x.pow(BigInt(0)).is_one());
}

TEST(Fp2, MultiplicativeGroupOrder) {
  // x^(p^2 - 1) = 1 for x != 0.
  auto f = small_field();
  HmacDrbg rng(30);
  const BigInt p = f->modulus();
  const Fp2 x = Fp2::random(f, rng);
  if (!x.is_zero()) {
    EXPECT_TRUE(x.pow(p * p - BigInt(1)).is_one());
  }
}

TEST(Fp2, BytesRoundTrip) {
  auto f = big_field_3mod4();
  HmacDrbg rng(31);
  const Fp2 x = Fp2::random(f, rng);
  const Bytes b = x.to_bytes();
  EXPECT_EQ(b.size(), 2 * f->byte_size());
  EXPECT_EQ(Fp2::from_bytes(f, b), x);
  EXPECT_THROW(Fp2::from_bytes(f, Bytes(5, 0)), InvalidArgument);
}

TEST(Fp2, EmbeddingFromFp) {
  auto f = small_field();
  const Fp2 x(f->from_u64(9));
  EXPECT_EQ(x.re().to_bigint(), BigInt(9));
  EXPECT_TRUE(x.im().is_zero());
}

}  // namespace
}  // namespace medcrypt::field
