#include "games/ind_id_tcpa.h"

namespace medcrypt::games {

IndIdTcpaGame::IndIdTcpaGame(pairing::ParamSet group, std::size_t message_len,
                             std::size_t t, std::size_t n, std::uint64_t seed)
    : rng_(seed), dealer_(std::move(group), message_len, t, n, rng_) {}

const threshold::ThresholdSetup& IndIdTcpaGame::corrupt(
    std::vector<std::uint32_t> players) {
  if (corrupted_) {
    throw GameViolation("IND-ID-TCPA: corrupted set already chosen");
  }
  const std::size_t t = dealer_.setup().threshold;
  if (players.size() != t - 1) {
    throw GameViolation("IND-ID-TCPA: must corrupt exactly t-1 players");
  }
  std::set<std::uint32_t> seen;
  for (std::uint32_t p : players) {
    if (p == 0 || p > dealer_.setup().players || !seen.insert(p).second) {
      throw GameViolation("IND-ID-TCPA: invalid corrupted set");
    }
  }
  corrupted_ = std::move(players);
  return dealer_.setup();
}

void IndIdTcpaGame::require_corrupted() const {
  if (!corrupted_) {
    throw GameViolation("IND-ID-TCPA: corrupt() must be called first");
  }
  if (phase_ == Phase::kFinished) {
    throw GameViolation("IND-ID-TCPA: game already finished");
  }
}

ec::Point IndIdTcpaGame::extract(std::string_view identity) {
  require_corrupted();
  if (challenge_identity_ && *challenge_identity_ == identity) {
    throw GameViolation("IND-ID-TCPA: cannot extract the challenge identity");
  }
  extracted_.insert(std::string(identity));
  return dealer_.extract_full_key(identity);
}

std::vector<threshold::KeyShare> IndIdTcpaGame::corrupted_shares(
    std::string_view identity) {
  require_corrupted();
  std::vector<threshold::KeyShare> out;
  const auto all = dealer_.extract_shares(identity);
  for (std::uint32_t p : *corrupted_) {
    out.push_back(all[p - 1]);
  }
  return out;
}

const ibe::BasicCiphertext& IndIdTcpaGame::challenge(std::string_view identity,
                                                     BytesView m0,
                                                     BytesView m1) {
  require_corrupted();
  if (phase_ != Phase::kQuery1) {
    throw GameViolation("IND-ID-TCPA: challenge already issued");
  }
  if (extracted_.contains(std::string(identity))) {
    throw GameViolation("IND-ID-TCPA: challenge identity was extracted");
  }
  if (m0.size() != m1.size() ||
      m0.size() != dealer_.setup().params.message_len) {
    throw GameViolation("IND-ID-TCPA: challenge messages must be message_len");
  }
  std::uint8_t byte;
  rng_.fill(std::span(&byte, 1));
  coin_ = byte & 1;
  challenge_identity_ = std::string(identity);
  challenge_ct_ = ibe::basic_encrypt(dealer_.setup().params, identity,
                                     coin_ ? m1 : m0, rng_);
  phase_ = Phase::kQuery2;
  return *challenge_ct_;
}

bool IndIdTcpaGame::submit_guess(int b) {
  if (phase_ != Phase::kQuery2) {
    throw GameViolation("IND-ID-TCPA: no outstanding challenge");
  }
  phase_ = Phase::kFinished;
  return b == coin_;
}

}  // namespace medcrypt::games
