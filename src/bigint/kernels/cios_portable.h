// Portable fixed-K CIOS Montgomery multiply — the historic
// montgomery.cpp kernel, hoisted so both the portable dispatch tier and
// Montgomery's non-accelerated widths (2/6/16 limbs) share one
// definition. The loops fully unroll at compile time and the scratch
// limbs stay in registers, which is worth ~2x over the runtime-k loop.
//
// Behavioral contract (the accelerated tiers replicate it bit for bit):
// inputs are k-limb little-endian arrays; after the interleaved
// reduction the (K+1)-limb intermediate gets exactly ONE conditional
// subtraction of n, so reduced inputs (< n) give reduced outputs, while
// out-of-range inputs (up to R-1) give the same partially-reduced
// residue the historic code produced.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bigint/kernels/kernels.h"

namespace medcrypt::bigint::kernels {

template <std::size_t K>
void cios_fixed(const u64* a, const u64* b, const u64* n, u64 n0inv,
                u64* out) {
  using u128 = unsigned __int128;
  u64 t[K + 2] = {};
  for (std::size_t i = 0; i < K; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < K; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 s = static_cast<u128>(t[K]) + carry;
    t[K] = static_cast<u64>(s);
    t[K + 1] = static_cast<u64>(s >> 64);

    const u64 m = t[0] * n0inv;
    u128 cur = static_cast<u128>(m) * n[0] + t[0];
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < K; ++j) {
      cur = static_cast<u128>(m) * n[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    s = static_cast<u128>(t[K]) + carry;
    t[K - 1] = static_cast<u64>(s);
    t[K] = t[K + 1] + static_cast<u64>(s >> 64);
    t[K + 1] = 0;
  }
  bool ge = t[K] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = K; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (ge) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < K; ++i) {
      const u128 diff = static_cast<u128>(t[i]) - n[i] - borrow;
      out[i] = static_cast<u64>(diff);
      borrow = (diff >> 64) ? 1 : 0;
    }
  } else {
    for (std::size_t i = 0; i < K; ++i) out[i] = t[i];
  }
  scrub_scratch(t, K + 2);
}

}  // namespace medcrypt::bigint::kernels
