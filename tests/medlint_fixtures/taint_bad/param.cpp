// secret-param-by-value positives: a secret-typed and a secret-named
// owning parameter, both taken by value.
struct SplitKey;

void store_half(SplitKey user_half);
void absorb(Bytes session_key);
