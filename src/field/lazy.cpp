#include "field/lazy.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bigint/kernels/kernels.h"

namespace medcrypt::field {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

void WideAcc::budget_overflow(unsigned used) {
  // No exception: an overflowing accumulator means an arithmetic
  // invariant is broken tree-wide, and unwinding would let a wrong
  // pairing escape a catch block. Print where we are and die.
  std::fprintf(stderr,
               "medcrypt: WideAcc budget overflow: %u accumulation units "
               "(kBudget is %u); the lazy-reduction magnitude contract is "
               "violated\n",
               used, WideAcc::kBudget);
  std::abort();
}

void WideProduct::assign(const Fp& a, const Fp& b) {
  assert(a.field_ != nullptr && a.field_ == b.field_);
  assert(a.field_->limb_count() <= kMaxLimbs);
  a.field_->mont().mul_wide_limbs(a.store_.data(), b.store_.data(), w_.data());
}

WideAcc::WideAcc(const PrimeField& field)
    : mont_(&field.mont()), k_(field.limb_count()) {
  assert(supports(field));
}

WideAcc::~WideAcc() {
  // The accumulator can carry secret-derived intermediates (line
  // evaluations of secret-dependent Miller chains); same contract as
  // the kernels' stack scratch.
  bigint::kernels::scrub_scratch(acc_.data(), acc_.size());
}

void WideAcc::add_wide(const u64* w) {
  u64 carry = 0;
  for (std::size_t i = 0; i < 2 * k_; ++i) {
    const u128 s = static_cast<u128>(acc_[i]) + w[i] + carry;
    acc_[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  for (std::size_t i = 2 * k_; carry != 0 && i < 2 * k_ + 2; ++i) {
    const u128 s = static_cast<u128>(acc_[i]) + carry;
    acc_[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
}

void WideAcc::sub_wide(const u64* w) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < 2 * k_; ++i) {
    const u128 d = static_cast<u128>(acc_[i]) - w[i] - borrow;
    acc_[i] = static_cast<u64>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
  for (std::size_t i = 2 * k_; borrow != 0 && i < 2 * k_ + 2; ++i) {
    const u128 d = static_cast<u128>(acc_[i]) - borrow;
    acc_[i] = static_cast<u64>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
  // T >= 0 by the R*n bias, so the borrow dies inside the top limbs.
  assert(borrow == 0 && "WideAcc: accumulator went negative");
}

void WideAcc::add_hi(const u64* a) {
  u64 carry = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    const u128 s = static_cast<u128>(acc_[k_ + i]) + a[i] + carry;
    acc_[k_ + i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  for (std::size_t i = 2 * k_; carry != 0 && i < 2 * k_ + 2; ++i) {
    const u128 s = static_cast<u128>(acc_[i]) + carry;
    acc_[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
}

void WideAcc::add_product(const Fp& a, const Fp& b) {
  u64 w[2 * kMaxLimbs];
  mont_->mul_wide_limbs(a.store_.data(), b.store_.data(), w);
  bump();
  add_wide(w);
  bigint::kernels::scrub_scratch(w, 2 * k_);
}

void WideAcc::sub_product(const Fp& a, const Fp& b) {
  u64 w[2 * kMaxLimbs];
  mont_->mul_wide_limbs(a.store_.data(), b.store_.data(), w);
  bump();
  add_hi(mont_->modulus_limbs());  // + R*n keeps T non-negative
  sub_wide(w);
  bigint::kernels::scrub_scratch(w, 2 * k_);
}

void WideAcc::add(const WideProduct& w) {
  bump();
  add_wide(w.w_.data());
}

void WideAcc::sub(const WideProduct& w) {
  bump();
  add_hi(mont_->modulus_limbs());
  sub_wide(w.w_.data());
}

void WideAcc::add_shifted(const Fp& a) {
  bump();
  add_hi(a.store_.data());
}

void WideAcc::sub_shifted(const Fp& a) {
  // (n - a) is non-negative for a reduced element, so the bias and the
  // subtraction collapse into one k-limb pass.
  const u64* n = mont_->modulus_limbs();
  const u64* av = a.store_.data();
  u64 d[kMaxLimbs];
  u64 borrow = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    const u128 diff = static_cast<u128>(n[i]) - av[i] - borrow;
    d[i] = static_cast<u64>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
  assert(borrow == 0 && "WideAcc::sub_shifted: element out of range");
  bump();
  add_hi(d);
  bigint::kernels::scrub_scratch(d, k_);
}

void WideAcc::reduce_into(Fp& out) {
  assert(out.field_ != nullptr && &out.field_->mont() == mont_);
  mont_->redc_limbs(acc_.data(), out.store_.data());
  std::fill(acc_.begin(), acc_.end(), u64{0});
  used_ = 0;
}

}  // namespace medcrypt::field
