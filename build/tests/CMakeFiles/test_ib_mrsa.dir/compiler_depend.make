# Empty compiler generated dependencies file for test_ib_mrsa.
# This may be replaced when dependencies are built.
