// Shared helpers for the experiment harnesses: wall-clock timing of
// closures, a fixed-width table printer for paper-style rows, a
// machine-readable JSON result sink (docs/PERF.md), and a fast IB-mRSA
// system factory for benches.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "hash/drbg.h"
#include "mediated/ib_mrsa.h"

// Short git revision stamped into every JSON report so result files can
// be matched to the code that produced them; the bench CMakeLists
// defines it from `git rev-parse --short HEAD`.
#ifndef MEDCRYPT_GIT_REV
#define MEDCRYPT_GIT_REV "unknown"
#endif

namespace medcrypt::benchutil {

/// Mean wall-clock microseconds of `fn` over `iters` runs (one warmup).
template <typename Fn>
double time_us(int iters, Fn&& fn) {
  fn();  // warmup
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

/// Iteration count for table benches: `dflt` unless the
/// MEDCRYPT_BENCH_ITERS environment variable overrides it (the CI
/// bench-smoke job sets it to 1 so every row still executes once).
inline int bench_iters(int dflt) {
  const char* env = std::getenv("MEDCRYPT_BENCH_ITERS");
  if (env == nullptr) return dflt;
  const int v = std::atoi(env);
  return v >= 1 ? v : dflt;
}

/// Collects named timing results and writes them as BENCH_<tag>.json in
/// the working directory: one object per op with its median time in
/// nanoseconds and the iteration count, plus the git revision. The
/// format is the contract for cross-revision comparisons — see
/// docs/PERF.md for how the numbers are meant to be consumed.
class JsonReport {
 public:
  explicit JsonReport(std::string tag) : tag_(std::move(tag)) {}
  ~JsonReport() { write(); }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  /// Records one result; a repeated name overwrites the earlier entry
  /// (so an aggregate re-report of the same op wins). `unit` defaults
  /// to nanoseconds; non-timing benches pass e.g. "bytes" or
  /// "tokens_per_s" and the entry is emitted as value/unit instead of
  /// median_ns.
  void add(const std::string& name, double value, long iterations,
           std::string unit = "ns") {
    for (Entry& e : entries_) {
      if (e.name == name) {
        e.value = value;
        e.iterations = iterations;
        e.unit = std::move(unit);
        return;
      }
    }
    entries_.push_back(Entry{name, value, iterations, std::move(unit)});
  }

  /// Times `fn` like time_us() but per-sample, records the MEDIAN under
  /// `name`, and returns the median in microseconds — a drop-in for
  /// time_us() in table benches that should also feed the JSON report.
  template <typename Fn>
  double time_us(const std::string& name, int iters, Fn&& fn) {
    fn();  // warmup
    std::vector<double> samples_ns;
    samples_ns.reserve(static_cast<std::size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      samples_ns.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
    std::sort(samples_ns.begin(), samples_ns.end());
    const std::size_t n = samples_ns.size();
    const double median_ns = (n % 2 == 1)
                                 ? samples_ns[n / 2]
                                 : (samples_ns[n / 2 - 1] + samples_ns[n / 2]) / 2.0;
    add(name, median_ns, iters);
    return median_ns / 1000.0;
  }

  /// Writes BENCH_<tag>.json; called automatically on destruction.
  void write() {
    if (written_) return;
    written_ = true;
    const std::string path = "BENCH_" + tag_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_rev\": \"%s\",\n"
                 "  \"results\": [\n", tag_.c_str(), MEDCRYPT_GIT_REV);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      const char* comma = i + 1 < entries_.size() ? "," : "";
      if (e.unit == "ns") {
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"median_ns\": %.1f, "
                     "\"iterations\": %ld}%s\n",
                     e.name.c_str(), e.value, e.iterations, comma);
      } else {
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"value\": %.1f, "
                     "\"unit\": \"%s\", \"iterations\": %ld}%s\n",
                     e.name.c_str(), e.value, e.unit.c_str(), e.iterations,
                     comma);
      }
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu results, rev %s)\n", path.c_str(),
                entries_.size(), MEDCRYPT_GIT_REV);
  }

 private:
  struct Entry {
    std::string name;
    double value = 0.0;
    long iterations = 0;
    std::string unit = "ns";
  };

  std::string tag_;
  std::vector<Entry> entries_;
  bool written_ = false;
};

/// Fixed-width markdown-ish table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    print_row(headers_, widths);
    std::string sep;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      sep += "|";
      sep += std::string(widths[i] + 2, '-');
    }
    std::printf("%s|\n", sep.c_str());
    for (const auto& row : rows_) print_row(row, widths);
  }

 private:
  static void print_row(const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += "| ";
      line += cell;
      line += std::string(widths[i] - cell.size() + 1, ' ');
    }
    std::printf("%s|\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_us(double us) {
  char buf[64];
  if (us >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", us / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", us);
  }
  return buf;
}

inline std::string fmt_count(std::uint64_t v) { return std::to_string(v); }

/// IB-mRSA system for benches: paper-size 1024-bit modulus. Safe-prime
/// generation at this size takes ~20 s, so benches use ordinary primes
/// and retry setup until the bench identities' exponents are invertible
/// (exactly the failure safe primes exist to rule out; runtime costs of
/// the resulting system are identical).
inline mediated::IbMRsaSystem bench_mrsa_system(
    RandomSource& rng, const std::vector<std::string>& identities) {
  for (;;) {
    mediated::IbMRsaSystem system(
        mediated::IbMRsaSystem::Options{1024, 160, /*safe_primes=*/false}, rng);
    try {
      for (const auto& id : identities) (void)system.full_exponent(id);
      return system;
    } catch (const Error&) {
      // some e_ID shared a factor with phi(n); regenerate the modulus
    }
  }
}

}  // namespace medcrypt::benchutil
