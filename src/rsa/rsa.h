// RSA substrate for the mRSA / IB-mRSA baseline (paper §2).
//
// Key generation supports ordinary primes and the safe primes
// p = 2p' + 1 that IB-mRSA's Setup requires (so that a hash-derived odd
// public exponent is coprime to φ(n) with overwhelming probability).
// Raw modular exponentiation is exposed separately from the OAEP layer
// because mediated RSA splits the private exponent additively:
//   m = c^{d_sem} · c^{d_user} mod n.
#pragma once

#include <optional>
#include <utility>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/random_source.h"

namespace medcrypt::rsa {

using bigint::BigInt;

/// RSA public key (n, e).
struct PublicKey {
  BigInt n;
  BigInt e;

  /// Modulus size in bytes (the OAEP block size k).
  std::size_t byte_size() const { return (n.bit_length() + 7) / 8; }
};

/// RSA private key with factorization (kept by the key generator; a
/// mediated deployment never hands the full d to any single party).
/// Wipes its secret components on destruction (medlint: missing-wipe-dtor).
struct PrivateKey {
  PrivateKey() = default;
  PrivateKey(PublicKey pub_, BigInt d_, BigInt p_, BigInt q_, BigInt phi_)
      : pub(std::move(pub_)), d(std::move(d_)), p(std::move(p_)),
        q(std::move(q_)), phi(std::move(phi_)) {}
  PrivateKey(const PrivateKey&) = default;
  PrivateKey(PrivateKey&&) = default;
  PrivateKey& operator=(const PrivateKey&) = default;
  PrivateKey& operator=(PrivateKey&&) = default;
  ~PrivateKey() {
    d.wipe();
    p.wipe();
    q.wipe();
    phi.wipe();
  }

  PublicKey pub;
  BigInt d;
  BigInt p;
  BigInt q;
  BigInt phi;  // φ(n) = (p-1)(q-1)
};

/// Options for key generation.
struct KeyGenOptions {
  std::size_t modulus_bits = 1024;
  BigInt public_exponent = BigInt(std::uint64_t{65537});
  /// Use safe primes p = 2p'+1 (slow; IB-mRSA setup needs this so that
  /// identity-derived exponents are invertible).
  bool safe_primes = false;
};

/// Generates an RSA key pair. Throws InvalidArgument for tiny sizes.
PrivateKey generate_key(const KeyGenOptions& options, RandomSource& rng);

/// Raw RSA: x^e mod n. Requires 0 <= x < n.
BigInt public_op(const PublicKey& key, const BigInt& x);

/// Raw RSA: x^d mod n (no CRT — mediated halves cannot use CRT anyway).
BigInt private_op(const PrivateKey& key, const BigInt& x);

/// Splits a private exponent additively: d = d_user + d_sem (mod φ(n)).
/// Returns {d_user, d_sem}. This is the mRSA key split of [4].
std::pair<BigInt, BigInt> split_exponent(const BigInt& d, const BigInt& phi,
                                         RandomSource& rng);

/// Recovers a factor pair of n from a full exponent pair (e, d) with
/// e·d ≡ 1 (mod φ(n)) — the classic attack the paper invokes in §2/§4:
/// in IB-mRSA a user colluding with the SEM learns d = d_user + d_sem,
/// factors the COMMON modulus, and thereby breaks every identity.
/// Returns {p, q} or nullopt if the probabilistic search fails (it
/// succeeds with probability >= 1 - 2^-tries for valid inputs).
std::optional<std::pair<BigInt, BigInt>> factor_from_exponents(
    const BigInt& n, const BigInt& e, const BigInt& d, RandomSource& rng,
    int tries = 64);

}  // namespace medcrypt::rsa
