// Runtime observability layer — umbrella header (docs/OBSERVABILITY.md).
//
// The paper's claims are quantitative (token cost, bits on the wire,
// revocation latency); the ROADMAP's north star is a production SEM
// under heavy traffic. This layer provides the in-process visibility a
// deployment needs to check those claims live: lock-light counters,
// log-linear latency histograms, and per-stage pipeline tracing, all
// scraped through one MetricsRegistry.
//
// Two switches, two costs:
//   - Compile time: the CMake option MEDCRYPT_OBS (default ON) defines
//     MEDCRYPT_OBS_ENABLED for the whole tree. With OFF, every
//     instrumentation class (Counter, Gauge, Span, TraceScope, the
//     registry) collapses to an empty inline stub, so instrumentation
//     points compile to nothing. Histogram and the exporters stay real
//     in both modes — they are plain data structures with no hot-path
//     role.
//   - Run time: obs::set_enabled(false) is a relaxed-atomic kill switch
//     for ON builds; bench_obs_overhead uses it to measure the ON-vs-OFF
//     delta inside one binary.
//
// Hot-path discipline: recording is a couple of relaxed atomic adds on
// per-thread-sharded cells (Counter) or on a histogram bucket — no
// locks, no allocation after first use. Scrapes pay the synchronization
// cost instead; see registry.h for the (weak) consistency contract.
//
// Secret hygiene: metric names, labels and trace payloads must never
// carry key material — medlint's obs-secret-arg check rejects any
// secret-named value in the argument list of an obs:: call.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#ifndef MEDCRYPT_OBS_ENABLED
#define MEDCRYPT_OBS_ENABLED 1
#endif

namespace medcrypt::obs {

/// Nanosecond monotonic timestamp; same steady_clock base as
/// bench_util's timers, so obs histograms and bench medians are
/// directly comparable.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if MEDCRYPT_OBS_ENABLED

/// Number of per-thread cells a sharded counter spreads its increments
/// over. Threads are assigned cells round-robin at first use; 16 cells
/// keep an 8–16 thread SEM free of increment contention without bloating
/// every counter.
inline constexpr std::size_t kThreadCells = 16;

/// This thread's counter cell index (stable for the thread's lifetime).
std::size_t thread_cell();

namespace detail {
inline std::atomic<bool> g_enabled{true};
// Default TraceScope sampling: trace 1 pipeline in 2^shift.
inline std::atomic<unsigned> g_trace_sample_shift{4};
// Trace id of the trace being assembled on this thread (0 = none).
// Lives here, below histogram.h, so Histogram::record can probe it for
// exemplar capture without depending on span.h.
inline thread_local std::uint64_t t_trace_id = 0;
}  // namespace detail

/// Runtime kill switch for all recording (ON builds only). Scrapes still
/// work; they just see frozen values.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Trace id of this thread's in-flight sampled trace; 0 when no trace is
/// active. Histogram::record uses this to attach exemplars.
inline std::uint64_t current_trace_id() { return detail::t_trace_id; }

/// Process-wide default sampling rate for TraceScope: 1 execution in
/// 2^shift carries a trace (4 → 1/16). The scenario harness and the
/// overhead bench override it (0 → every execution) and restore it.
inline unsigned trace_sample_shift() {
  return detail::g_trace_sample_shift.load(std::memory_order_relaxed);
}
inline void set_trace_sample_shift(unsigned shift) {
  detail::g_trace_sample_shift.store(shift, std::memory_order_relaxed);
}

/// Allocates a fresh nonzero trace id: a monotone atomic counter pushed
/// through the SplitMix64 finalizer, so ids are unique per process,
/// well-mixed for sampling/sharding, and carry no timing information.
inline std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> seq{0};
  std::uint64_t z =
      seq.fetch_add(1, std::memory_order_relaxed) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return (z ^ (z >> 31)) | 1;  // never 0 (0 means "not traced")
}

#else  // !MEDCRYPT_OBS_ENABLED

inline constexpr std::size_t kThreadCells = 1;
inline std::size_t thread_cell() { return 0; }
inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline std::uint64_t current_trace_id() { return 0; }
inline unsigned trace_sample_shift() { return 0; }
inline void set_trace_sample_shift(unsigned) {}
inline std::uint64_t next_trace_id() { return 0; }

#endif  // MEDCRYPT_OBS_ENABLED

/// Propagatable trace identity: the handle a caller captures at a
/// pipeline boundary and hands to the next hop (a batch entry point, a
/// sim::Transport frame, eventually the networked SEM wire protocol).
/// Plain data in both build modes; in OFF builds current() is always
/// the unsampled context and adoption sites compile to nothing.
struct TraceContext {
  std::uint64_t trace_id = 0;

  /// True when the originating execution was sampled — downstream hops
  /// adopt the decision instead of re-sampling, so a request is either
  /// traced end-to-end or not at all.
  constexpr bool sampled() const { return trace_id != 0; }

  /// The context of this thread's in-flight trace (unsampled if none).
  static TraceContext current() { return TraceContext{current_trace_id()}; }

  /// Bytes reserved for the trace id in wire frames (sim::Transport
  /// today, the SEM daemon protocol later).
  static constexpr std::size_t kWireSize = 8;
};

}  // namespace medcrypt::obs
