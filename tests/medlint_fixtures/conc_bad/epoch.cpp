// Epoch-publish positives: a published_by snapshot pointer replaced
// without the mutex, and in-place mutation of the published object.
// Line numbers are asserted by medlint_test.cpp.
#include <memory>
#include <mutex>
#include <set>
#include <string>

struct RevocationSet {
  void publish(std::shared_ptr<std::set<std::string>> next) {
    std::lock_guard<std::mutex> g(mu_);
    snap_ = std::move(next);  // under lock: clean
  }
  void publish_racy(std::shared_ptr<std::set<std::string>> next) {
    snap_ = std::move(next);  // line 15: flagged (swap without mu_)
  }
  void mutate_in_place(const std::string& id) {
    std::lock_guard<std::mutex> g(mu_);
    snap_->insert(id);  // line 19: flagged (in-place mutation)
  }
  std::mutex mu_;
  std::shared_ptr<std::set<std::string>> snap_;  // medlint: published_by(mu_)
};
