# Empty compiler generated dependencies file for bench_comm.
# This may be replaced when dependencies are built.
