// Structural pass over one translation unit: functions, classes, and
// file-scope globals, extracted from the lexer's token stream.
//
// This is the shared substrate of the interprocedural engine. The taint
// pass (taint.cpp) used to locate function signatures itself; that logic
// now lives here so the summary pass (summary.cpp), the concurrency pass
// (concurrency.cpp) and the dataflow pass all walk the *same* model of
// the file: every function with its parameter list, body token range and
// constructor member-init entries; every class with its members, their
// `// medlint: guarded_by(...)` / `published_by(...)` / `relaxed_ok`
// annotations and the set of members its destructor wipes; and the
// file-scope variables that a helper could stash a secret into.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace medlint {

struct Param {
  std::vector<std::string> type_idents;
  std::string name;     // empty for unnamed params
  bool by_value = true;
  std::size_t line = 0;
};

// Parses "(...)" as a parameter list. Returns nullopt when the span reads
// as an expression (numbers, strings, arithmetic, member access, nested
// calls) — which is how call sites are told apart from declarations.
std::optional<std::vector<Param>> parse_params(const std::vector<Token>& toks,
                                               std::size_t open,
                                               std::size_t close);

// One constructor member-init-list entry: member_(args...) / member_{...}.
struct MemberInit {
  std::string member;
  std::size_t args_lo = 0;  // token range inside the parens/braces
  std::size_t args_hi = 0;
  std::size_t line = 0;
};

struct FnInfo {
  std::string name;           // unqualified (last component)
  std::string qualifier;      // Cls in `Cls::name(...)`, last component
  std::string lexical_class;  // class body this signature sits inside
  std::vector<Param> params;
  std::vector<MemberInit> inits;
  std::vector<std::string> wiped_members;  // dtor bodies: members wiped
  std::string requires_lock;  // `// medlint: requires_lock(m)` annotation
  bool is_definition = false;
  bool is_dtor = false;
  bool ctor_like = false;  // uppercase first letter: constructor/factory
  std::size_t sig_line = 0;
  std::size_t body_open = 0;   // '{' token index (definitions only)
  std::size_t body_close = 0;  // matching '}' token index

  // Out-of-line definitions carry the class in the qualifier; in-class
  // ones carry it lexically. Either way this is the owning class name.
  const std::string& enclosing_class() const {
    return lexical_class.empty() ? qualifier : lexical_class;
  }
};

struct MemberInfo {
  std::vector<std::string> type_idents;
  std::size_t line = 0;
  std::string guarded_by;    // mutex member name, or empty
  std::string published_by;  // epoch-publish pattern: swap under this lock
  bool relaxed_ok = false;   // relaxed atomic ops on this member are vetted
  bool is_mutex = false;
};

struct ClassInfo {
  std::string name;
  std::size_t line = 0;
  bool relaxed_ok = false;  // class-level: all relaxed ops on it are vetted
  bool has_dtor = false;
  std::map<std::string, MemberInfo> members;
  std::set<std::string> dtor_wiped;  // members wiped in an in-class dtor
};

struct FileModel {
  std::vector<FnInfo> fns;
  std::map<std::string, ClassInfo> classes;
  std::map<std::string, MemberInfo> globals;  // namespace-scope variables
  std::set<std::string> declared_fns;  // every name declared *or* defined
};

FileModel build_file_model(const LexedFile& lf);

}  // namespace medlint
