#include "games/reduction.h"

namespace medcrypt::games {

WccaToCcaReduction::WccaToCcaReduction(IndIdCcaGame& challenger,
                                       std::uint64_t seed)
    : challenger_(challenger), rng_(seed),
      pairing_(challenger.params().curve()) {}

const ec::Point& WccaToCcaReduction::sem_half(std::string_view identity) {
  const auto it = l_sem_.find(identity);
  if (it != l_sem_.end()) return it->second;
  // "B chooses a random point d_IDi,sem and puts the entry into L_sem."
  const auto& params = challenger_.params();
  ec::Point fresh =
      params.group.mul_g(bigint::BigInt::random_unit(rng_, params.order()));
  return l_sem_.emplace(std::string(identity), std::move(fresh)).first->second;
}

Bytes WccaToCcaReduction::decrypt(std::string_view identity,
                                  const ibe::FullCiphertext& ct) {
  // "Every decryption query is forwarded by B to its challenger."
  return challenger_.decrypt(identity, ct);
}

ec::Point WccaToCcaReduction::extract_user_key(std::string_view identity) {
  // "B first forwards it to its challenger. When it receives d_ID, it
  // computes d_ID,user = d_ID - d_ID,sem."
  const ec::Point d_full = challenger_.extract(identity);
  const ec::Point& d_sem = sem_half(identity);
  ++additions_computed_;
  return d_full - d_sem;
}

field::Fp2 WccaToCcaReduction::sem_query(std::string_view identity,
                                         const ibe::FullCiphertext& ct) {
  // "B ... computes the pairing ê(U, d_IDi,sem) which is sent to A."
  ++pairings_computed_;
  return pairing_.pair(ct.u, sem_half(identity));
}

ec::Point WccaToCcaReduction::extract_sem_key(std::string_view identity) {
  return sem_half(identity);
}

const ibe::FullCiphertext& WccaToCcaReduction::challenge(
    std::string_view identity, BytesView m0, BytesView m1) {
  // "B forwards m0 and m1 to its challenger and chooses ID as challenge
  // identity ... and forwards it as a challenge to A."
  return challenger_.challenge(identity, m0, m1);
}

bool WccaToCcaReduction::submit_guess(int b) {
  // "B produces the same result b' as A."
  return challenger_.submit_guess(b);
}

}  // namespace medcrypt::games
