# Empty compiler generated dependencies file for medcrypt.
# This may be replaced when dependencies are built.
