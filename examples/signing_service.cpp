// Code-signing service: mediated GDH vs mediated RSA, side by side (§5).
//
// A build farm signs release artifacts through a SEM, so a leaked build
// key can be disabled instantly. The demo runs the same workflow over
// the paper's two candidates and prints the per-signature communication
// the paper compares: ~160-bit tokens (GDH) vs 1024-bit (mRSA).
//
// Build & run:  cmake --build build && ./build/examples/signing_service
// (IB-mRSA setup generates 1024-bit safe primes; expect ~20 s once.)
#include <iomanip>
#include <iostream>

#include "hash/drbg.h"
#include "mediated/ib_mrsa.h"
#include "mediated/mediated_gdh.h"
#include "pairing/params.h"

int main() {
  using namespace medcrypt;
  hash::HmacDrbg rng(4242);
  auto revocations = std::make_shared<mediated::RevocationList>();

  std::cout << "== release signing service ==\n";

  // --- mediated GDH side ------------------------------------------------
  mediated::GdhMediator gdh_sem(pairing::paper_params(), revocations);
  auto gdh_builder =
      enroll_gdh_user(pairing::paper_params(), gdh_sem, "builder-7", rng);

  // --- IB-mRSA side (paper-size 1024-bit Blum modulus, safe primes) ------
  std::cout << "generating 1024-bit IB-mRSA system (safe primes)...\n";
  mediated::IbMRsaSystem mrsa(
      mediated::IbMRsaSystem::Options{1024, 160, /*safe_primes=*/true}, rng);
  mediated::MRsaMediator mrsa_sem(mrsa.params(), revocations);
  auto mrsa_builder = enroll_mrsa_user(mrsa, mrsa_sem, "builder-7", rng);

  // --- sign an artifact through both -------------------------------------
  const Bytes artifact = str_bytes("release-1.4.2.tar.gz sha256=3b5c...");

  sim::Transport gdh_wire;
  const ec::Point gdh_sig = gdh_builder.sign(artifact, gdh_sem, &gdh_wire);
  std::cout << "\nmediated GDH signature:\n"
            << "  signature size: " << gdh_sig.to_bytes().size() << " bytes ("
            << gdh_sig.to_bytes().size() * 8 << " bits, compressed point)\n"
            << "  SEM token:      " << gdh_wire.stats().to_client.bytes
            << " bytes\n"
            << "  verified:       "
            << (gdh::verify(pairing::paper_params(), gdh_builder.public_key(),
                            artifact, gdh_sig)
                    ? "yes"
                    : "NO")
            << "\n";

  sim::Transport mrsa_wire;
  const bigint::BigInt mrsa_sig = mrsa_builder.sign(artifact, mrsa_sem, &mrsa_wire);
  std::cout << "mediated RSA (IB-mRSA) signature:\n"
            << "  signature size: " << mrsa.params().byte_size() << " bytes ("
            << mrsa.params().byte_size() * 8 << " bits)\n"
            << "  SEM token:      " << mrsa_wire.stats().to_client.bytes
            << " bytes\n"
            << "  verified:       "
            << (ib_mrsa_verify(mrsa.params(), "builder-7", artifact, mrsa_sig)
                    ? "yes"
                    : "NO")
            << "\n";

  const double ratio = static_cast<double>(mrsa_wire.stats().to_client.bytes) /
                       static_cast<double>(gdh_wire.stats().to_client.bytes);
  std::cout << std::fixed << std::setprecision(1)
            << "\nSEM->user communication ratio (mRSA / GDH): " << ratio
            << "x  (the paper's 1024 vs ~160-bit comparison)\n";

  // --- key leak: one revocation disables BOTH signing paths ---------------
  std::cout << "\nbuilder-7 key reported leaked; revoking...\n";
  revocations->revoke("builder-7");
  int denied = 0;
  try {
    (void)gdh_builder.sign(artifact, gdh_sem);
  } catch (const RevokedError&) {
    ++denied;
  }
  try {
    (void)mrsa_builder.sign(artifact, mrsa_sem);
  } catch (const RevokedError&) {
    ++denied;
  }
  std::cout << "signing denied on " << denied
            << "/2 paths; existing release signatures remain verifiable\n";
  return denied == 2 ? 0 : 1;
}
