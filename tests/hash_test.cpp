// Tests for SHA-256 (FIPS vectors), HMAC (RFC 4231 vectors), the
// HMAC-DRBG random source, and the KDF helpers.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "hash/drbg.h"
#include "hash/hmac.h"
#include "hash/kdf.h"
#include "hash/sha256.h"

namespace medcrypt::hash {
namespace {

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha256::digest(str_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::digest(str_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::digest(str_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finalize();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = str_bytes("The quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    const auto d = h.finalize();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha256::digest(msg));
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 55/56/64 byte padding boundaries must all differ.
  std::set<std::string> digests;
  for (std::size_t len = 50; len <= 70; ++len) {
    digests.insert(to_hex(Sha256::digest(Bytes(len, 0x5a))));
  }
  EXPECT_EQ(digests.size(), 21u);
}

TEST(Sha256, ReuseAfterFinalizeThrows) {
  Sha256 h;
  h.update(str_bytes("x"));
  (void)h.finalize();
  EXPECT_THROW(h.update(str_bytes("y")), Error);
  EXPECT_THROW(h.finalize(), Error);
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, str_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(str_bytes("Jefe"),
                               str_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, str_bytes("Test Using Larger Than Block-Size Key - "
                               "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Drbg, DeterministicForSameSeed) {
  HmacDrbg a(std::uint64_t{42}), b(std::uint64_t{42});
  Bytes x(64), y(64);
  a.fill(x);
  b.fill(y);
  EXPECT_EQ(x, y);
}

TEST(Drbg, DiffersAcrossSeeds) {
  HmacDrbg a(std::uint64_t{1}), b(std::uint64_t{2});
  Bytes x(32), y(32);
  a.fill(x);
  b.fill(y);
  EXPECT_NE(x, y);
}

TEST(Drbg, StreamAdvances) {
  HmacDrbg a(std::uint64_t{7});
  Bytes x(32), y(32);
  a.fill(x);
  a.fill(y);
  EXPECT_NE(x, y);
}

TEST(Drbg, ReseedChangesStream) {
  HmacDrbg a(std::uint64_t{7}), b(std::uint64_t{7});
  b.reseed(str_bytes("extra"));
  Bytes x(32), y(32);
  a.fill(x);
  b.fill(y);
  EXPECT_NE(x, y);
}

TEST(Drbg, SplitFillsMatchSingleFill) {
  HmacDrbg a(std::uint64_t{9});
  Bytes big(96);
  a.fill(big);
  // Note: HMAC-DRBG updates state between generate calls, so split fills
  // intentionally do NOT equal one big fill; just check determinism and
  // byte balance instead.
  HmacDrbg b(std::uint64_t{9});
  Bytes big2(96);
  b.fill(big2);
  EXPECT_EQ(big, big2);
}

TEST(Drbg, RoughlyUniformBytes) {
  HmacDrbg a(std::uint64_t{12345});
  Bytes buf(1 << 16);
  a.fill(buf);
  std::array<int, 256> counts{};
  for (auto byte : buf) counts[byte]++;
  // Each value expected 256 times; allow generous bounds.
  for (int c : counts) {
    EXPECT_GT(c, 128);
    EXPECT_LT(c, 512);
  }
}

TEST(SystemRandom, ProducesDistinctStreams) {
  SystemRandom a, b;
  Bytes x(32), y(32);
  a.fill(x);
  b.fill(y);
  EXPECT_NE(x, y);  // 2^-256 failure probability
}

TEST(Kdf, ExpandIsDeterministicAndLabelSeparated) {
  const Bytes seed = str_bytes("seed");
  EXPECT_EQ(expand("A", seed, 48), expand("A", seed, 48));
  EXPECT_NE(expand("A", seed, 32), expand("B", seed, 32));
  // Prefix property: same label/seed, longer output extends shorter.
  const Bytes a64 = expand("A", seed, 64);
  const Bytes a32 = expand("A", seed, 32);
  EXPECT_TRUE(std::equal(a32.begin(), a32.end(), a64.begin()));
}

TEST(Kdf, ExpandOddLengths) {
  const Bytes seed = str_bytes("x");
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 100u}) {
    EXPECT_EQ(expand("L", seed, len).size(), len);
  }
}

TEST(Kdf, Mgf1KnownShape) {
  const Bytes seed = str_bytes("mgf1 seed");
  const Bytes a = mgf1(seed, 40);
  EXPECT_EQ(a.size(), 40u);
  EXPECT_EQ(mgf1(seed, 40), a);
  EXPECT_NE(mgf1(str_bytes("other"), 40), a);
}

TEST(Kdf, HashToRangeInRange) {
  const auto q = bigint::BigInt::from_dec("730750818665451621361119245571504901405976559617");
  for (int i = 0; i < 50; ++i) {
    Bytes data = {static_cast<std::uint8_t>(i)};
    const auto v = hash_to_range("H3", data, q);
    EXPECT_GE(v, bigint::BigInt(0));
    EXPECT_LT(v, q);
  }
}

TEST(Kdf, HashToRangeLabelSeparation) {
  const auto q = bigint::BigInt::from_dec("1000000007");
  const Bytes d = str_bytes("data");
  EXPECT_NE(hash_to_range("H3", d, q), hash_to_range("H4", d, q));
}

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);
  EXPECT_THROW(from_hex("abc"), Error);
  EXPECT_THROW(from_hex("zz"), Error);
}

TEST(Bytes, XorAndConcat) {
  const Bytes a = {1, 2, 3}, b = {255, 0, 3};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{254, 2, 0}));
  EXPECT_THROW(xor_bytes(a, Bytes{1}), Error);
  EXPECT_EQ(concat(a, b), (Bytes{1, 2, 3, 255, 0, 3}));
  EXPECT_EQ(concat(a, b, a), (Bytes{1, 2, 3, 255, 0, 3, 1, 2, 3}));
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2}, Bytes{1, 2}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1}, Bytes{1, 2}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

}  // namespace
}  // namespace medcrypt::hash
