#!/usr/bin/env bash
# Secret-hygiene entry point: medlint + clang-tidy + sanitizer build/test.
#
# Usage: tools/check.sh [--fast]
#   --fast  incremental medlint only: files whose content hash hits the
#           summary cache are skipped, so an unchanged tree lints in
#           milliseconds. Skips clang-tidy and the sanitizer build. The
#           full run (CI's ct-verify / hygiene jobs) stays authoritative —
#           a changed callee can surface findings in an unchanged caller,
#           which incremental mode won't see.
#
# To run the fast mode before every commit, install it as a hook:
#   ln -s ../../tools/check.sh .git/hooks/pre-commit   # hook argv has no
#   # --fast, so the hook detects its own name and picks the fast path.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1
# Invoked as a git pre-commit hook (via the symlink above)? Default to fast.
[[ "$(basename "$0")" == "pre-commit" ]] && fast=1

medlint_args=(
  --src "$repo/src"
  --src "$repo/tools"
  --allowlist "$repo/tools/medlint/allowlist.txt"
  --baseline "$repo/tools/medlint/baseline.txt"
  --extern-allowlist "$repo/tools/medlint/extern_calls.txt"
  --summary-cache "$repo/build/medlint_facts.cache"
  --stats
)

echo "== medlint =="
cmake -B "$repo/build" -S "$repo" >/dev/null
cmake --build "$repo/build" --target medlint -j "$(nproc)" >/dev/null
if [[ "$fast" -eq 1 ]]; then
  "$repo/build/tools/medlint/medlint" "${medlint_args[@]}" --incremental
  echo "== fast mode: clang-tidy and sanitizers skipped =="
  exit 0
fi
"$repo/build/tools/medlint/medlint" "${medlint_args[@]}"

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B "$repo/build" -S "$repo" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Sources only; headers are covered via HeaderFilterRegex in .clang-tidy.
  find "$repo/src" "$repo/tools/medlint" -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p "$repo/build" --quiet
else
  echo "clang-tidy not found; skipping (install LLVM tools to enable)"
fi

echo "== sanitizer build (address,undefined) =="
cmake -B "$repo/build-asan" -S "$repo" \
  -DMEDCRYPT_SANITIZE=address,undefined >/dev/null
cmake --build "$repo/build-asan" -j "$(nproc)" >/dev/null
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$(nproc)"

echo "== all checks passed =="
