// Tests for the simulated clock, link statistics and transport.
#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/stats.h"
#include "sim/transport.h"

namespace medcrypt::sim {
namespace {

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.advance_ns(5);
  clock.advance_ns(10);
  EXPECT_EQ(clock.now_ns(), 15u);
  clock.advance_to(12);  // in the past: no-op
  EXPECT_EQ(clock.now_ns(), 15u);
  clock.advance_to(100);
  EXPECT_EQ(clock.now_ns(), 100u);
}

TEST(LatencyModel, DelayComposition) {
  const LatencyModel m{1000, 2.0};
  EXPECT_EQ(m.delay_for(0), 1000u);
  EXPECT_EQ(m.delay_for(100), 1200u);
}

TEST(LatencyModel, Presets) {
  EXPECT_GT(LatencyModel::wan().propagation_ns,
            LatencyModel::lan().propagation_ns);
}

TEST(Transport, CountsBothDirections) {
  Transport t;
  t.send_to_server(100);
  t.send_to_server(50);
  t.send_to_client(20);
  EXPECT_EQ(t.stats().to_server.messages, 2u);
  EXPECT_EQ(t.stats().to_server.bytes, 150u);
  EXPECT_EQ(t.stats().to_client.messages, 1u);
  EXPECT_EQ(t.stats().to_client.bytes, 20u);
  EXPECT_EQ(t.stats().total_bytes(), 170u);
  EXPECT_EQ(t.stats().total_messages(), 3u);
}

TEST(Transport, ResetClearsCounters) {
  Transport t;
  t.send_to_server(10);
  t.reset_stats();
  EXPECT_EQ(t.stats().total_bytes(), 0u);
  EXPECT_EQ(t.stats().total_messages(), 0u);
}

TEST(Transport, ChargesClock) {
  SimClock clock;
  Transport t(&clock, LatencyModel{1000, 1.0});
  t.send_to_server(500);   // 1000 + 500
  t.send_to_client(100);   // 1000 + 100
  EXPECT_EQ(clock.now_ns(), 2600u);
}

TEST(Transport, NoClockMeansNoTimeCharge) {
  Transport t;
  t.send_to_server(1 << 20);
  SUCCEED();  // accounting-only transport must not crash or charge time
}

}  // namespace
}  // namespace medcrypt::sim
