// OAEP padding (PKCS#1 v2 shape, SHA-256 + MGF1).
//
// The encode/decode steps are separated from the RSA exponentiation so
// the mediated schemes can run the exponentiation in two halves and only
// then strip the padding — exactly the structure whose SEM-simulation
// problem §2 of the paper analyzes (the mediator cannot tell a valid
// ciphertext from an invalid one before the padding check).
#pragma once

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/random_source.h"

namespace medcrypt::rsa {

using bigint::BigInt;

/// Maximum message length for a k-byte modulus: k - 2*hLen - 2.
std::size_t oaep_max_message(std::size_t k);

/// OAEP-encodes `message` into a k-byte block (returned as an integer
/// < 2^(8(k-1)) so it is always < n). Throws InvalidArgument when the
/// message is too long.
BigInt oaep_encode(BytesView message, std::size_t k, RandomSource& rng);

/// Inverts oaep_encode. Throws DecryptionError when the padding is
/// inconsistent (invalid ciphertext).
Bytes oaep_decode(const BigInt& block, std::size_t k);

}  // namespace medcrypt::rsa
