// Fixed-width limb storage backing one prime-field element.
//
// A LimbStore holds exactly k little-endian 64-bit limbs, where k is the
// field's limb count fixed at construction; arithmetic writes in place
// through data(). Every named parameter set (toy64 through the paper's
// 512-bit sec80) fits the inline buffer, so value-semantic Fp
// temporaries on the curve/pairing hot path never touch the heap; wider
// moduli fall back to heap storage transparently.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

namespace medcrypt::field {

class LimbStore {
 public:
  /// Largest limb count stored inline: 512-bit fields, i.e. all named
  /// parameter sets.
  static constexpr std::size_t kInlineLimbs = 8;

  /// Empty store (size 0); produced by default construction and wipe().
  LimbStore() = default;

  /// `size` zeroed limbs.
  explicit LimbStore(std::size_t size) { reset(size); }

  LimbStore(const LimbStore& o) { assign(o); }
  LimbStore(LimbStore&& o) noexcept { steal(o); }
  LimbStore& operator=(const LimbStore& o) {
    if (this != &o) {
      release();
      assign(o);
    }
    return *this;
  }
  LimbStore& operator=(LimbStore&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~LimbStore() { release(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::uint64_t* data() {
    return size_ <= kInlineLimbs ? inline_.data() : heap_;
  }
  const std::uint64_t* data() const {
    return size_ <= kInlineLimbs ? inline_.data() : heap_;
  }

  /// Re-sizes to `size` zeroed limbs.
  void reset(std::size_t size) {
    release();
    size_ = size;
    if (size_ > kInlineLimbs) heap_ = new std::uint64_t[size_];
    std::fill_n(data(), size_, std::uint64_t{0});
  }

  bool is_zero() const {
    const std::uint64_t* d = data();
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < size_; ++i) acc |= d[i];
    return acc == 0;
  }

  /// Constant-time over the limb contents: the accumulator sweeps every
  /// limb so mismatch position never shows in the timing. Only the limb
  /// *count* (public, it tracks the field size) can exit early.
  bool equals(const LimbStore& o) const {
    if (size_ != o.size_) return false;
    const std::uint64_t* a = data();
    const std::uint64_t* b = o.data();
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < size_; ++i) acc |= a[i] ^ b[i];
    return acc == 0;
  }

  /// Scrubs the limbs through volatile stores and returns to the empty
  /// state. NOTE: moved-from and plain-destroyed stores are NOT
  /// scrubbed, matching BigInt (see docs/SECRET_HYGIENE.md) — secret
  /// holders wipe from their destructors.
  void wipe() {
    volatile std::uint64_t* d = data();
    for (std::size_t i = 0; i < size_; ++i) d[i] = 0;
    release();
  }

 private:
  void release() {
    if (size_ > kInlineLimbs) delete[] heap_;
    heap_ = nullptr;
    size_ = 0;
  }
  void assign(const LimbStore& o) {
    size_ = o.size_;
    if (size_ > kInlineLimbs) heap_ = new std::uint64_t[size_];
    std::copy_n(o.data(), size_, data());
  }
  void steal(LimbStore& o) noexcept {
    size_ = o.size_;
    if (size_ > kInlineLimbs) {
      heap_ = o.heap_;
      o.heap_ = nullptr;
    } else {
      inline_ = o.inline_;
    }
    o.size_ = 0;
  }

  std::size_t size_ = 0;
  std::array<std::uint64_t, kInlineLimbs> inline_{};
  std::uint64_t* heap_ = nullptr;
};

}  // namespace medcrypt::field
